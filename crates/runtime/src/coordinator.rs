//! The coordinator control plane.
//!
//! [`Coordinator::run`] drives a live training run: it spawns one OS
//! thread per DP rank, runs the lock-step gradient exchange (the
//! collective stand-in over crossbeam channels), orchestrates two-level
//! checkpoints through the per-node agents, injects node kills from the
//! fault plan, *detects* failures through missing heartbeat replies, and
//! executes live recovery — pulling from surviving nodes' CPU-memory
//! snapshots when possible, falling back to the persistent store —
//! before rewinding the data stream and resuming.
//!
//! Everything observable is deterministic in the configuration seed: the
//! same config produces bitwise-identical final parameters, which the
//! coordinator verifies by comparing every rank's parameter checksum.

use crate::collective::{CollectiveKind, GroupMesh, HierMesh, RingMesh};
use crate::config::{CheckpointMode, ConfigError, RuntimeConfig};
use crate::injector::FaultInjector;
use crate::metrics::{EventKind, MetricsRegistry, Phase, RunSummary};
use crate::node::NodeRuntime;
use crate::rank::{owner_coord, run_rank, RankCommand, RankContext, RankEvent, StepChaos};
use crate::recovery_exec::{execute_recovery, RecoveryOutcome};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use moc_ckpt::{ChainStore, EngineStats, PartialPlan};
use moc_core::dynamic_k::DynamicK;
use moc_core::placement::PlacementPlan;
use moc_core::plt::PltAccumulator;
use moc_core::recovery::RecoveryError;
use moc_core::topology::RankCoord;
use moc_core::twolevel::ShardJob;
use moc_elastic::{plan_expand, plan_shrink, PlacementPlanner};
use moc_moe::ExpertId;
use moc_obs::{
    ckpt_flow_id, Counter, Flow, HealthConfig, HealthScorer, HealthState, SpanKind, TelemetryCell,
    TraceCollector, TraceSink, BACKGROUND_TID_BASE,
};
use moc_store::{ChaosStore, ClusterMemory, NodeId, ObjectStore, RetryStore, StatePart};
use moc_train::checkpoint::expert_of;
use moc_train::TinyMoeLm;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Error from a live run.
#[derive(Debug)]
pub enum RuntimeError {
    /// The configuration is inconsistent.
    Config(ConfigError),
    /// Recovery could not restore a module from any surviving source.
    Recovery(RecoveryError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Config(e) => write!(f, "invalid runtime config: {e}"),
            RuntimeError::Recovery(e) => write!(f, "live recovery failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Config(e) => Some(e),
            RuntimeError::Recovery(e) => Some(e),
        }
    }
}

impl From<ConfigError> for RuntimeError {
    fn from(e: ConfigError) -> Self {
        RuntimeError::Config(e)
    }
}

impl From<RecoveryError> for RuntimeError {
    fn from(e: RecoveryError) -> Self {
        RuntimeError::Recovery(e)
    }
}

/// Consecutive no-progress recoveries tolerated before the run fails
/// loudly (see `Run::recoveries_without_progress`).
const MAX_RECOVERIES_WITHOUT_PROGRESS: u32 = 3;

/// The live-runtime entry point.
pub struct Coordinator {
    config: RuntimeConfig,
    store: Arc<dyn ObjectStore>,
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("model", &self.config.model.name())
            .field("topology", &self.config.topology.to_string())
            .finish()
    }
}

impl Coordinator {
    /// Creates a coordinator persisting checkpoints into `store`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Config`] for inconsistent configurations.
    pub fn new(config: RuntimeConfig, store: Arc<dyn ObjectStore>) -> Result<Self, RuntimeError> {
        config.validate()?;
        Ok(Self { config, store })
    }

    /// Runs the configured training job to completion and returns the
    /// measured summary.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Recovery`] if a fault strikes state that no
    /// surviving source can restore (impossible after the bootstrap
    /// checkpoint this method always takes).
    pub fn run(self) -> Result<RunSummary, RuntimeError> {
        Run::start(self.config, self.store)?.drive()
    }
}

/// Group-collective statistics every step reply carries.
#[derive(Clone, Copy)]
struct GroupStats {
    tp_consistent: bool,
    tp_sync_secs: f64,
    pp_wait_secs: f64,
}

/// One grad reply (star collective).
struct GradResult {
    grad: Vec<f32>,
    expert_loads: Vec<Vec<u64>>,
    compute_secs: f64,
    stall_secs: f64,
    group: GroupStats,
    /// Adopted dead-slice gradients (elastic degraded mode only).
    adopted: Vec<crate::rank::AdoptedGrad>,
}

/// One rank's report from a star iteration.
enum StarReply {
    /// The rank computed and shipped its gradient.
    Grad(GradResult),
    /// The rank abandoned the iteration after a group-collective timeout.
    Aborted,
}

/// One rank's report from a ring iteration.
enum RingReply {
    /// The rank finished the collective and applied the step.
    Done(RingDone),
    /// The rank abandoned the collective after a peer timeout.
    Aborted,
}

/// Statistics of a completed ring step.
struct RingDone {
    expert_loads: Vec<Vec<u64>>,
    /// Expert loads of the dead slices this rank adopted (survivor ring
    /// only; the adopted gradients themselves were folded in-band).
    adopted_loads: Vec<Vec<Vec<u64>>>,
    compute_secs: f64,
    stall_secs: f64,
    reduce_scatter_secs: f64,
    all_gather_secs: f64,
    ring_wait_secs: f64,
    apply_secs: f64,
    group: GroupStats,
}

/// In-flight run state.
struct Run {
    config: RuntimeConfig,
    store: Arc<dyn ObjectStore>,
    /// Handle onto the retry wrapper every store op flows through, kept
    /// for its retry/exhaustion counters (the `store` field above is the
    /// same object, type-erased).
    retry_store: Arc<RetryStore>,
    memory: ClusterMemory,
    nodes: Vec<NodeRuntime>,
    cmd_txs: Vec<Sender<RankCommand>>,
    handles: Vec<Option<JoinHandle<()>>>,
    events: Receiver<RankEvent>,
    events_tx: Sender<RankEvent>,
    injector: FaultInjector,
    metrics: MetricsRegistry,
    /// Partial-expert checkpoint plan: the rotating snapshot / persist
    /// selections (rebuilt when Dynamic-K raises K).
    plan: PartialPlan,
    dynamic_k: Option<DynamicK>,
    ckpt_index: u64,
    /// Recovery generation: bumped on every recovery so events from
    /// threads spawned before a rollback can never be mistaken for
    /// replies to re-executed iterations.
    epoch: u64,
    plt: PltAccumulator,
    cum_routed: Vec<Vec<u64>>,
    routed_at: HashMap<u64, Vec<Vec<u64>>>,
    /// Checkpoint iterations currently retained in `routed_at`, oldest
    /// first (the bootstrap version 0 is kept separately, forever).
    ckpt_history: Vec<u64>,
    val_curve: Vec<(u64, f32)>,
    k_trace: Vec<usize>,
    module_names: Vec<String>,
    /// Flattened-gradient length, fixed by the model architecture.
    grad_len: usize,
    /// The live ring meshes, one per DP gradient group (ring and
    /// hierarchical collectives); rebuilt after every recovery so
    /// stranded messages die with their channels. While the world is
    /// shrunk these are the survivor rings: still full DP size, with
    /// each dead slot driven by its adopter.
    meshes: Vec<RingMesh>,
    /// The two-level leader meshes, one per DP gradient group
    /// (hierarchical collective, full shape only); rebuilt with the
    /// ring meshes.
    hier_meshes: Vec<HierMesh>,
    /// TP/PP group wiring (mixed-parallelism worlds only); rebuilt with
    /// the ring meshes.
    group_mesh: Option<GroupMesh>,
    /// Iterations strictly below this bound run on the star fallback
    /// (set after a ring abort; 0 when the ring is healthy).
    star_fallback_until: u64,
    /// Per-DP-group reduced-gradient buffers reused across star
    /// iterations: each Arc is reclaimed once every group member dropped
    /// its clone (guaranteed by the next iteration's gradient barrier),
    /// so the steady state does not allocate per iteration.
    apply_bufs: Vec<Arc<Vec<f32>>>,
    /// Recoveries triggered since the last completed iteration. Failure
    /// detection is timeout-based, so a rank that is merely slower than
    /// `heartbeat_timeout` is indistinguishable from a dead one; if the
    /// same iteration keeps timing out the run would otherwise livelock
    /// in rollback. After a few consecutive recoveries with no forward
    /// progress the run fails loudly instead, pointing at the timeout.
    recoveries_without_progress: u32,
    /// Per-global-rank liveness. Always all-true outside elastic shrink
    /// mode (the respawn path revives ranks within the recovery); under
    /// elastic shrink, the dead shard groups' ranks stay false until an
    /// expand revives them.
    live: Vec<bool>,
    /// The failure-domain-aware expert placement (elastic mode only):
    /// checkpoint duties are keyed by this plan instead of the static
    /// `owner_coord`, so partial-expert selection follows migrations.
    placement: Option<PlacementPlan>,
    /// Shard groups currently dead (DP indices), cumulative across
    /// shrinks until an expand revives them.
    dead_groups: BTreeSet<usize>,
    /// Active slice adoption: dead group → surviving group computing its
    /// DP batch slice.
    adoptions: BTreeMap<usize, usize>,
    /// Iteration at which the current degraded window began (the most
    /// recent shrink's resume point), `None` when full-shape.
    degraded_since: Option<u64>,
    /// Value of `metrics.degraded_iterations` when the current degraded
    /// window opened (its first shrink): the expand event reports the
    /// window's length as the counter delta, so the executed-iteration
    /// counter stays the single source of truth.
    degraded_counter_base: u64,
    /// Per-checkpoint `(serialized bytes, serialize secs)` calibration
    /// samples.
    snapshot_samples: Vec<(u64, f64)>,
    /// Per-checkpoint `(persisted bytes, blocking write secs)` samples
    /// (sync mode only).
    persist_samples: Vec<(u64, f64)>,
    /// Run-wide span collector (inert when `config.obs` is disabled);
    /// hands sinks to every rank/engine thread and takes flight dumps
    /// when faults are declared.
    collector: TraceCollector,
    /// The coordinator's own span sink (control-plane lane).
    sink: TraceSink,
    /// The coordinator's live-telemetry counter cell (inert unless
    /// [`moc_obs::ObsConfig::telemetry_interval`] is set).
    telemetry: TelemetryCell,
    /// Flow id of the currently open fault arrow: allocated when a kill
    /// is injected, consumed by the recovery span that resolves it.
    fault_flow: Option<u64>,
    /// Streaming per-rank health scorer (`None` unless
    /// `config.obs.health`); fed from the step samples every successful
    /// collection already carries. Pure observer — it never touches the
    /// training math, so scored runs stay bitwise identical to dark
    /// runs.
    health: Option<HealthScorer>,
    /// Ranks the health plane currently scores worse than healthy: the
    /// suspicion detector's corroboration set. Silence from an
    /// already-degraded rank is declared one lease window sooner.
    health_degraded: BTreeSet<usize>,
}

impl Run {
    fn start(config: RuntimeConfig, store: Arc<dyn ObjectStore>) -> Result<Self, RuntimeError> {
        let world = config.world_size();
        let num_nodes = config.topology.nodes();
        // The collector exists before any thread it hands sinks to, and
        // its anchor doubles as the metrics clock so timeline events and
        // trace spans share one run-relative timebase.
        let collector = TraceCollector::new(&config.obs);
        let metrics = match collector.anchor() {
            Some(anchor) => MetricsRegistry::with_anchor(anchor),
            None => MetricsRegistry::new(),
        };
        let sink = collector.sink(num_nodes as u32, 0, "control-plane", "coordinator");
        // Every store op — checkpoint persists, recovery fetches, GC —
        // flows through the retry wrapper; the chaos wrapper (when the
        // plan injects store faults) sits inside it so injected failures
        // are what the retries absorb.
        let inner: Arc<dyn ObjectStore> = if config.chaos.store.is_empty() {
            store
        } else {
            Arc::new(ChaosStore::new(store, config.chaos.store.clone()))
        };
        let retry_store = Arc::new(RetryStore::new(inner, config.retry));
        let store: Arc<dyn ObjectStore> = retry_store.clone();
        let memory = ClusterMemory::new(num_nodes);
        let nodes: Vec<NodeRuntime> = (0..num_nodes)
            .map(|n| {
                NodeRuntime::spawn(
                    NodeId(n),
                    memory.node_arc(NodeId(n)),
                    store.clone(),
                    config.ckpt,
                    collector.sink(
                        n as u32,
                        BACKGROUND_TID_BASE + n as u32,
                        &format!("node{n}"),
                        &format!("ckpt-engine {n}"),
                    ),
                )
            })
            .collect();
        // Live telemetry: the coordinator's own cell plus read-only
        // probes into counters other components already keep (store
        // retries, per-node persisted bytes). Engines survive recoveries
        // (only ranks respawn), so registering once here is enough.
        let telemetry = collector.telemetry_cell();
        collector.telemetry_probe(Counter::StoreRetries, retry_store.retries_probe());
        for node in &nodes {
            collector.telemetry_probe(Counter::PersistedBytes, node.persisted_bytes_probe());
        }
        let (events_tx, events) = unbounded();

        let layers = config.model.num_moe_layers();
        let n_experts = config.model.num_experts();
        let plan = PartialPlan::new(config.k_snapshot, config.k_persist, n_experts, layers);
        let dynamic_k = config
            .dynamic_k_budget
            .map(|budget| DynamicK::new(config.k_snapshot, n_experts, budget));
        let probe = TinyMoeLm::new(config.model.clone(), config.seed);
        let module_names = probe.store().module_names();
        let grad_len = usize::try_from(probe.store().scalar_count()).expect("model fits memory");
        drop(probe);
        let injector = FaultInjector::new(
            &config.faults,
            &config.stragglers,
            &config.chaos,
            config.total_iterations,
            num_nodes,
            world,
        );
        let cum_routed = vec![vec![0u64; n_experts]; layers];

        // Elastic mode plans the failure-domain-aware placement up
        // front; `validate()` already rejected unhostable replication
        // factors, so planning cannot fail here.
        let placement = config.elastic.shrink.then(|| {
            PlacementPlanner::new(
                config.topology,
                n_experts,
                layers,
                config.elastic.replication,
            )
            .plan()
            .expect("validated replication factor")
        });

        let mut run = Self {
            config,
            store,
            retry_store,
            memory,
            nodes,
            cmd_txs: Vec::with_capacity(world),
            handles: Vec::with_capacity(world),
            events,
            events_tx,
            injector,
            metrics,
            plan,
            dynamic_k,
            ckpt_index: 0,
            epoch: 0,
            plt: PltAccumulator::new(layers),
            cum_routed,
            routed_at: HashMap::new(),
            ckpt_history: Vec::new(),
            val_curve: Vec::new(),
            k_trace: Vec::new(),
            module_names,
            grad_len,
            meshes: Vec::new(),
            hier_meshes: Vec::new(),
            group_mesh: None,
            star_fallback_until: 0,
            apply_bufs: Vec::new(),
            recoveries_without_progress: 0,
            live: vec![true; world],
            placement,
            dead_groups: BTreeSet::new(),
            adoptions: BTreeMap::new(),
            degraded_since: None,
            degraded_counter_base: 0,
            snapshot_samples: Vec::new(),
            persist_samples: Vec::new(),
            collector,
            sink,
            telemetry,
            fault_flow: None,
            health: None,
            health_degraded: BTreeSet::new(),
        };
        if run.config.obs.enabled && run.config.obs.health {
            run.health = Some(HealthScorer::new(HealthConfig::default()));
        }
        run.apply_bufs = (0..run.config.topology.num_dp_groups())
            .map(|_| Arc::new(Vec::new()))
            .collect();
        for rank in 0..world {
            let (tx, handle) = run.spawn_rank(rank);
            run.cmd_txs.push(tx);
            run.handles.push(Some(handle));
        }
        run.build_links();
        if run.placement.is_some() {
            // Key checkpoint duties by the placement plan from the very
            // first checkpoint, so selection follows the same map before
            // and after migrations.
            run.send_reconfigure();
        }
        Ok(run)
    }

    /// Builds fresh collective wiring — one ring mesh per DP gradient
    /// group (ring and hierarchical collectives) plus the hierarchical
    /// leader meshes (full-shape hierarchical runs) and the TP/PP group
    /// mesh (mixed parallelism only) — and hands every rank its
    /// endpoints. The previous meshes (if any) are dropped, which drops
    /// any messages an aborted collective stranded in their channels.
    ///
    /// A shrunk world keeps running the ring: the meshes stay full DP
    /// size and each dead slot's endpoints go to the surviving adopter
    /// of that slice, which drives the slot with the adopted gradient on
    /// a helper thread. The fold order — and the result — stays bitwise
    /// the fixed-shape ring's for any adoption map.
    fn build_links(&mut self) {
        let topo = self.config.topology;
        let num_groups = topo.num_dp_groups();
        self.meshes = if self.config.collective != CollectiveKind::Star {
            (0..num_groups)
                .map(|_| RingMesh::new(topo.dp(), self.grad_len, self.config.ring_chunk))
                .collect()
        } else {
            Vec::new()
        };
        // The leader chain only serves the full-shape world: a degraded
        // hierarchical run falls back to the survivor ring, so no leader
        // meshes are built while shrunk.
        self.hier_meshes =
            if self.config.collective == CollectiveKind::Hierarchical && !self.degraded() {
                (0..num_groups)
                    .map(|g| {
                        let node_of: Vec<usize> = (0..topo.dp())
                            .map(|d| topo.node_of_global(d * num_groups + g))
                            .collect();
                        HierMesh::new(&node_of, self.grad_len, self.config.ring_chunk)
                    })
                    .collect()
            } else {
                Vec::new()
            };
        for mesh in &self.meshes {
            self.metrics.collective_allocs += mesh.pool().preallocated() as u64;
        }
        for mesh in &self.hier_meshes {
            self.metrics.collective_allocs += mesh.pool().preallocated() as u64;
        }
        self.group_mesh = (num_groups > 1).then(|| GroupMesh::new(&topo));
        if self.meshes.is_empty() && self.group_mesh.is_none() {
            return; // flat star world: nothing to install
        }
        for (rank, tx) in self.cmd_txs.iter().enumerate() {
            if !self.live[rank] {
                continue;
            }
            // A rank's DP group is its position-independent coordinate
            // pair `(tp, pp)`; its slot on that group's ring is its DP
            // index.
            let group = rank % num_groups;
            let slot = rank / num_groups;
            let ring = self.meshes.get(group).map(|m| m.endpoints(slot));
            // Dead slots this rank adopts: it drives each one on the same
            // ring, in place of the dead member.
            let adopted_rings = self
                .meshes
                .get(group)
                .map(|m| {
                    self.adoptions
                        .iter()
                        .filter(|&(_, &a)| a == slot)
                        .map(|(&d, _)| (d, m.endpoints(d)))
                        .collect()
                })
                .unwrap_or_default();
            let hier = self.hier_meshes.get(group).map(|m| m.endpoints(slot));
            let groups = self.group_mesh.as_ref().map(|g| g.endpoints(rank));
            tx.send(RankCommand::InstallLinks {
                ring,
                adopted_rings,
                hier,
                groups,
            })
            .expect("rank thread alive");
        }
    }

    /// The collective iteration `it` runs on: the configured one, unless
    /// a recovery or expand opened a star-fallback window that `it`
    /// falls into. A degraded (elastically shrunk) world runs the
    /// survivor ring — the full-DP-size ring whose dead slots are driven
    /// by their adopters — whether the configured collective is the flat
    /// ring or the hierarchical reduce (the leader chain is not rebuilt
    /// for shrunk shapes). The star is only ever the configured steady
    /// state or the bounded post-recovery fallback, never the steady
    /// state of a degraded run.
    fn collective_for(&self, it: u64) -> CollectiveKind {
        if self.config.collective == CollectiveKind::Star || it < self.star_fallback_until {
            return CollectiveKind::Star;
        }
        if self.degraded() {
            return CollectiveKind::Ring;
        }
        self.config.collective
    }

    /// Opens the bounded star-fallback window after a recovery or an
    /// expand: iterations strictly below `next_it +
    /// ring_fallback_iterations` run on the coordinator star, where
    /// `next_it` is the first iteration executed after the transition —
    /// exactly `ring_fallback_iterations` star iterations before the
    /// configured collective takes over. No-op for a star-configured run
    /// (the star already is the steady state).
    fn open_star_fallback(&mut self, next_it: u64) {
        if self.config.collective != CollectiveKind::Star {
            self.star_fallback_until = next_it + self.config.ring_fallback_iterations;
        }
    }

    /// Whether the run is currently shrunk below its configured shape.
    fn degraded(&self) -> bool {
        self.degraded_since.is_some()
    }

    /// Live rank count (the reply quorum of every barrier).
    fn live_world(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// The lowest-indexed live rank (eval target and state-export
    /// donor; rank 0 unless its shard group died).
    fn first_live_rank(&self) -> usize {
        self.live
            .iter()
            .position(|&l| l)
            .expect("at least one live rank")
    }

    fn spawn_rank(&self, rank: usize) -> (Sender<RankCommand>, JoinHandle<()>) {
        let (tx, rx) = unbounded();
        let node = self.node_of(rank);
        let ctx = RankContext {
            rank,
            coord: self.config.topology.coords_of(rank),
            config: self.config.clone(),
            commands: rx,
            events: self.events_tx.clone(),
            sink: self.collector.sink(
                node as u32,
                rank as u32,
                &format!("node{node}"),
                &format!("rank {rank}"),
            ),
            telemetry: self.collector.telemetry_cell(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("moc-rank-{rank}"))
            .spawn(move || run_rank(ctx))
            .expect("spawn rank thread");
        (tx, handle)
    }

    fn world(&self) -> usize {
        self.config.world_size()
    }

    fn node_of(&self, rank: usize) -> usize {
        self.config.topology.node_of_global(rank)
    }

    /// Records per-iteration TP/PP group statistics: TP divergences (the
    /// replica-consistency verdicts) plus the TP-sync and pipeline-bubble
    /// phases, charged as the max across ranks. No-ops in a flat world,
    /// keeping baseline summaries free of empty phases.
    fn record_group_stats(&mut self, stats: impl Iterator<Item = (usize, GroupStats)>) {
        if self.config.topology.num_dp_groups() == 1 {
            return;
        }
        let mut max_tp = 0.0f64;
        let mut max_pp = 0.0f64;
        for (_, s) in stats {
            if !s.tp_consistent {
                self.metrics.tp_divergences += 1;
            }
            max_tp = max_tp.max(s.tp_sync_secs);
            max_pp = max_pp.max(s.pp_wait_secs);
        }
        self.metrics.record(Phase::TpSync, max_tp);
        self.metrics.record(Phase::PpBubble, max_pp);
    }

    fn send_all(&self, command: &RankCommand) {
        for (rank, tx) in self.cmd_txs.iter().enumerate() {
            if self.live[rank] {
                tx.send(command.clone()).expect("rank thread alive");
            }
        }
    }

    /// The grid coordinate owning a module's checkpoint duties under the
    /// *current* elastic placement: expert modules follow the placement
    /// plan's (possibly migrated) owner, non-expert modules keep their
    /// static spread with dead groups remapped through the slice
    /// adoptions. Falls back to the static [`owner_coord`] outside
    /// elastic mode.
    fn module_owner_coord(&self, module: &str) -> RankCoord {
        let mut c = owner_coord(&self.config.topology, &self.config.model, module);
        let Some(placement) = &self.placement else {
            return c;
        };
        if let Some(id) = expert_of(&self.config.model, module) {
            c.dp = placement.owner_of(id);
        }
        if let Some(&adopter) = self.adoptions.get(&c.dp) {
            c.dp = adopter;
        }
        c
    }

    /// Pushes the current placement-keyed checkpoint duties and slice
    /// adoptions to every live rank (elastic mode only; sent at run
    /// start and after every shrink or expand).
    fn send_reconfigure(&self) {
        let topo = &self.config.topology;
        let mut owned: Vec<Vec<String>> = vec![Vec::new(); self.world()];
        for module in &self.module_names {
            let rank = topo.global_rank_of(self.module_owner_coord(module));
            owned[rank].push(module.clone());
        }
        for (rank, tx) in self.cmd_txs.iter().enumerate() {
            if !self.live[rank] {
                continue;
            }
            let dp = topo.coords_of(rank).dp;
            let adopted_slices: Vec<usize> = self
                .adoptions
                .iter()
                .filter(|&(_, &a)| a == dp)
                .map(|(&d, _)| d)
                .collect();
            tx.send(RankCommand::Reconfigure {
                owned: Arc::new(std::mem::take(&mut owned[rank])),
                adopted_slices: Arc::new(adopted_slices),
            })
            .expect("rank thread alive");
        }
    }

    fn drive(mut self) -> Result<RunSummary, RuntimeError> {
        self.bootstrap();

        let loop_start = Instant::now();
        let mut it = 1u64;
        while it <= self.config.total_iterations {
            let iter_start = Instant::now();
            // 0. Elastic expand: once the rejoin horizon passes,
            //    replacement ranks come back *before* this iteration's
            //    faults are injected — a kill scheduled here strikes the
            //    freshly expanded world (the "kill during migration"
            //    scenario).
            if let (Some(since), Some(after)) =
                (self.degraded_since, self.config.elastic.rejoin_after)
            {
                if it >= since + after {
                    self.expand(it);
                }
            }
            self.metrics.iterations_executed += 1;

            // 1. Inject scheduled kills: the node's CPU memory dies now;
            //    its ranks are told to die mid-iteration.
            let kills = self.injector.kills_at(it);
            if !kills.is_empty() {
                let inject_start = self.sink.now();
                // Quiesce agents first so the surviving tier contents are
                // deterministic when recovery plans against them.
                for node in &self.nodes {
                    node.wait_idle();
                }
                for &node in &kills {
                    self.memory.fault(NodeId(node));
                }
                self.metrics.faults_injected += kills.len() as u64;
                self.metrics.event(
                    it,
                    EventKind::FaultInjected {
                        nodes: kills.clone(),
                    },
                );
                // Open the fault flow arrow: stepped at detection, closed
                // by the recovery span that resolves it.
                let flow = self.collector.next_flow_id();
                self.fault_flow = Some(flow);
                self.sink.record(
                    SpanKind::Fault,
                    "fault-injected",
                    it,
                    inject_start,
                    self.sink.now() - inject_start,
                    Flow::Start(flow),
                );
            }

            // 2. Step all ranks through this iteration's collective,
            //    injecting scheduled straggler slowdowns and gray chaos
            //    (heartbeat report delays, mesh delays/drops).
            let collective = self.collective_for(it);
            let slows = self.injector.slows_at(it);
            if !slows.is_empty() {
                self.metrics.stragglers_injected += slows.len() as u64;
                for &(rank, factor) in &slows {
                    self.metrics
                        .event(it, EventKind::StragglerInjected { rank, factor });
                }
            }
            let report_delays = self.injector.report_delays_at(it);
            let mesh_chaos = self.injector.mesh_chaos_at(it);
            let window = self.collect_window(collective);
            let lease = self.config.detector.lease_for(window);
            for (rank, tx) in self.cmd_txs.iter().enumerate() {
                if !self.live[rank] {
                    continue;
                }
                let die = kills.contains(&self.node_of(rank));
                let slow_factor = slows.iter().find(|&&(r, _)| r == rank).map(|&(_, f)| f);
                // A scheduled loss of `m` heartbeat windows delays the
                // rank's reply to land halfway through the m-th lease:
                // the detector suspects it m times, then (for m below
                // `k_misses`) re-admits it without recovery.
                let report_delay = report_delays
                    .iter()
                    .find(|&&(r, _)| r == rank)
                    .map(|&(_, m)| window + lease * (m - 1) + lease / 2);
                let mesh = mesh_chaos
                    .iter()
                    .find(|&&(r, _)| r == rank)
                    .map(|&(_, m)| m);
                let chaos = StepChaos {
                    report_delay,
                    mesh_delay: mesh
                        .and_then(|m| (!m.drop).then(|| window.mul_f64(m.window_fraction))),
                    mesh_drop: mesh.is_some_and(|m| m.drop),
                };
                tx.send(RankCommand::Step {
                    iteration: it,
                    epoch: self.epoch,
                    die,
                    collective,
                    slow_factor,
                    chaos,
                })
                .expect("rank thread alive");
            }

            // 3.–5. Gradient exchange (collection, reduction, apply).
            //    Missing or aborted ranks mean dead nodes: detect,
            //    recover, and resume from the rolled-back iteration.
            let fault_resume = match collective {
                CollectiveKind::Star => self.exchange_star(it)?,
                CollectiveKind::Ring | CollectiveKind::Hierarchical => self.exchange_ring(it)?,
            };
            if let Some(resume) = fault_resume {
                self.telemetry.incr(Counter::Iterations);
                self.telemetry
                    .add_secs(Counter::IterationNanos, iter_start.elapsed().as_secs_f64());
                it = resume + 1;
                continue;
            }
            self.recoveries_without_progress = 0;
            if self.degraded() {
                self.metrics.degraded_iterations += 1;
                // While degraded the only ring iterations are survivor
                // rings (the leader chain never runs shrunk).
                if collective == CollectiveKind::Ring {
                    self.metrics.survivor_ring_iterations += 1;
                }
            }
            if collective == CollectiveKind::Hierarchical {
                self.metrics.hierarchical_iterations += 1;
            }

            // 6. Two-level checkpoint.
            if it.is_multiple_of(self.config.i_ckpt) {
                self.checkpoint(it);
            }

            // 7. Validation.
            let eval_due = (self.config.eval_every > 0
                && it.is_multiple_of(self.config.eval_every))
                || it == self.config.total_iterations;
            if eval_due {
                let loss = self.eval();
                self.val_curve.push((it, loss));
                self.metrics.event(it, EventKind::Eval { loss });
            }

            self.telemetry.incr(Counter::Iterations);
            self.telemetry
                .add_secs(Counter::IterationNanos, iter_start.elapsed().as_secs_f64());
            it += 1;
        }
        self.metrics.loop_secs = loop_start.elapsed().as_secs_f64();

        self.finish()
    }

    /// Full synchronous checkpoint of everything at iteration 0 — the
    /// recoverability floor every PEC run needs.
    fn bootstrap(&mut self) {
        self.full_checkpoint(0);
        self.routed_at.insert(0, self.cum_routed.clone());
    }

    /// Untimed full-selection synchronous checkpoint at `version`
    /// (bootstrap and the rejoin barrier share it; excluded from the
    /// checkpoint phase stats and counters).
    fn full_checkpoint(&mut self, version: u64) {
        // Quiesce first: an in-flight async checkpoint of the same
        // version may write the same keys through a *different* writer
        // (ownership moved at a shrink/expand), and the per-node queues
        // only order writes within one writer — draining serializes the
        // cross-writer overwrite so the last record always matches the
        // stored bytes.
        for node in self.nodes.iter().filter(|n| n.alive()) {
            node.wait_idle();
        }
        let full = self.plan.full_selection();
        let snapshot = Arc::new(full.snapshot);
        let persist = Arc::new(full.persist);
        self.send_all(&RankCommand::Checkpoint {
            iteration: version,
            snapshot,
            persist,
        });
        let (shards, _) = self.collect_shards(false);
        self.submit_and_drain(version, shards);
    }

    /// The rejoin barrier: a full re-commit of the current state by
    /// every live writer at `version`. Taken whenever previously-dead
    /// writers come back (elastic expand, total-loss restart): their
    /// frozen chains share no recent version with the survivors' — the
    /// survivors may even have GC'd the shared prefix — so without this
    /// barrier the next recovery's live-writer commit rule could find
    /// an *empty* intersection and fail on a store full of committed
    /// state. Survivors' writers dedup the unchanged payloads, so the
    /// barrier costs one manifest round in steady state.
    fn barrier_checkpoint(&mut self, version: u64) {
        self.full_checkpoint(version);
        self.record_routed_at(version);
    }

    /// Star-collective exchange: gather every rank's gradient, reduce
    /// each DP gradient group in DP order on the coordinator thread,
    /// broadcast per group, barrier on the apply. Returns `Some(resume)`
    /// when a fault was detected and recovered.
    fn exchange_star(&mut self, it: u64) -> Result<Option<u64>, RuntimeError> {
        let collect_start = Instant::now();
        let replies = self.collect_star(it);
        let missing: Vec<usize> = (0..self.world())
            .filter(|&r| self.live[r] && !replies.contains_key(&r))
            .collect();
        let aborted: Vec<usize> = replies
            .iter()
            .filter(|(_, r)| matches!(r, StarReply::Aborted))
            .map(|(&rank, _)| rank)
            .collect();
        if !missing.is_empty() || !aborted.is_empty() {
            let resume =
                self.handle_exchange_fault(it, &missing, &aborted, false, collect_start)?;
            return Ok(Some(resume));
        }
        let grads: BTreeMap<usize, GradResult> = replies
            .into_iter()
            .map(|(rank, r)| match r {
                StarReply::Grad(g) => (rank, g),
                StarReply::Aborted => unreachable!("aborts handled above"),
            })
            .collect();
        let max_compute = grads
            .values()
            .map(|g| g.compute_secs)
            .fold(0.0f64, f64::max);
        self.metrics.record(Phase::Compute, max_compute);
        for g in grads.values() {
            if g.stall_secs > 0.0 {
                self.metrics.record(Phase::StragglerStall, g.stall_secs);
            }
        }
        self.record_group_stats(grads.iter().map(|(&rank, g)| (rank, g.group)));
        let health_samples: Vec<(usize, f64, f64)> = grads
            .iter()
            .map(|(&rank, g)| (rank, g.compute_secs + g.stall_secs, g.stall_secs))
            .collect();
        self.observe_health(it, &health_samples);

        // Reduce each DP group: DP-order left fold into the group's
        // reused scratch buffer, then average by the group size. The fold
        // is seeded by *copying* the dp-0 member's gradient — not by
        // adding it to zero, which would flip -0.0 to +0.0 and diverge
        // bitwise from the ring's fold. `Arc::get_mut` succeeds in steady
        // state because every rank drops its clone of the previous
        // broadcast before sending this iteration's gradient. In a
        // shrunk world a dead DP index's gradient is spliced in from its
        // adopter's adopted-slice result at the same fold position, so
        // the fold — and the trajectory — is bitwise the fixed-shape
        // fold's.
        let dp = self.config.topology.dp();
        let num_groups = self.config.topology.num_dp_groups();
        // The gradient of DP index `d` for fold group `group`: the live
        // member's own gradient, or the adopter's adopted slice.
        let grad_of = |d: usize, group: usize| -> &Vec<f32> {
            let member = d * num_groups + group;
            if self.live[member] {
                &grads[&member].grad
            } else {
                let adopter = self.adoptions[&d] * num_groups + group;
                &grads[&adopter]
                    .adopted
                    .iter()
                    .find(|a| a.dp == d)
                    .expect("adopter carries the dead slice")
                    .grad
            }
        };
        let start = Instant::now();
        let reduce_trace = self.sink.now();
        for (group, buf) in self.apply_bufs.iter_mut().enumerate() {
            if Arc::get_mut(buf).is_none() {
                *buf = Arc::new(Vec::new());
            }
            let sum = Arc::get_mut(buf).expect("freshly replaced Arc");
            sum.clear();
            sum.extend_from_slice(grad_of(0, group));
            for d in 1..dp {
                for (s, &x) in sum.iter_mut().zip(grad_of(d, group)) {
                    *s += x;
                }
            }
            let inv = 1.0 / dp as f32;
            for s in sum.iter_mut() {
                *s *= inv;
            }
        }
        self.metrics
            .record(Phase::Reduce, start.elapsed().as_secs_f64());
        self.sink.span(SpanKind::Phase, "reduce", it, reduce_trace);
        // Routing statistics: one representative per shard group — the
        // live `(tp, pp) = (0, 0)` members' own loads plus the adopted
        // dead slices they computed.
        let mut routing: Vec<&Vec<Vec<u64>>> = Vec::new();
        for (&rank, g) in &grads {
            if rank % num_groups != 0 {
                continue;
            }
            routing.push(&g.expert_loads);
            for a in &g.adopted {
                routing.push(&a.expert_loads);
            }
        }
        self.record_routing(routing.into_iter());

        // Broadcast each group's reduced gradient; every member applies
        // the same Adam step, keeping replicas bitwise identical.
        let apply_start = Instant::now();
        let apply_trace = self.sink.now();
        for (rank, tx) in self.cmd_txs.iter().enumerate() {
            if !self.live[rank] {
                continue;
            }
            tx.send(RankCommand::Apply {
                grad: self.apply_bufs[rank % num_groups].clone(),
            })
            .expect("rank thread alive");
        }
        self.wait_applied();
        self.metrics
            .record(Phase::Apply, apply_start.elapsed().as_secs_f64());
        self.sink
            .span(SpanKind::Control, "apply-wait", it, apply_trace);
        Ok(None)
    }

    /// Ring-collective exchange: the ranks all-reduce and apply among
    /// themselves; the coordinator only collects statistics and watches
    /// for aborts. Returns `Some(resume)` when a fault was detected and
    /// recovered.
    fn exchange_ring(&mut self, it: u64) -> Result<Option<u64>, RuntimeError> {
        let collect_start = Instant::now();
        let replies = self.collect_ring(it);
        let missing: Vec<usize> = (0..self.world())
            .filter(|&r| self.live[r] && !replies.contains_key(&r))
            .collect();
        let aborted: Vec<usize> = replies
            .iter()
            .filter(|(_, r)| matches!(r, RingReply::Aborted))
            .map(|(&rank, _)| rank)
            .collect();
        if !missing.is_empty() || !aborted.is_empty() {
            let resume = self.handle_exchange_fault(it, &missing, &aborted, true, collect_start)?;
            return Ok(Some(resume));
        }
        let health_samples: Vec<(usize, f64, f64)> = replies
            .iter()
            .filter_map(|(&rank, r)| match r {
                RingReply::Done(d) => Some((rank, d.compute_secs + d.stall_secs, d.stall_secs)),
                RingReply::Aborted => None,
            })
            .collect();
        self.observe_health(it, &health_samples);

        // Compute / wait / apply are reported as the max across ranks
        // (the iteration's critical path); the ring legs as the median
        // across ranks (the representative per-rank cost of the
        // decentralized collective, robust to scheduler outliers on
        // oversubscribed hosts).
        let mut max_compute = 0.0f64;
        let mut max_wait = 0.0f64;
        let mut max_apply = 0.0f64;
        let mut max_collective_wall = 0.0f64;
        let mut sum_busy = 0.0f64;
        let mut rs_vals: Vec<f64> = Vec::new();
        let mut ag_vals: Vec<f64> = Vec::new();
        for reply in replies.values() {
            let RingReply::Done(d) = reply else { continue };
            max_compute = max_compute.max(d.compute_secs);
            max_wait = max_wait.max(d.ring_wait_secs);
            max_apply = max_apply.max(d.apply_secs);
            let busy = d.reduce_scatter_secs + d.all_gather_secs;
            sum_busy += busy;
            max_collective_wall = max_collective_wall.max(busy + d.ring_wait_secs);
            rs_vals.push(d.reduce_scatter_secs);
            ag_vals.push(d.all_gather_secs);
            if d.stall_secs > 0.0 {
                self.metrics.record(Phase::StragglerStall, d.stall_secs);
            }
        }
        rs_vals.sort_by(f64::total_cmp);
        ag_vals.sort_by(f64::total_cmp);
        let median_rs = rs_vals[rs_vals.len() / 2];
        let median_ag = ag_vals[ag_vals.len() / 2];
        self.metrics.record(Phase::Compute, max_compute);
        self.metrics.record(Phase::ReduceScatter, median_rs);
        self.metrics.record(Phase::AllGather, median_ag);
        self.metrics.record(Phase::RingWait, max_wait);
        self.metrics.record(Phase::Apply, max_apply);
        // Cross-rank pipelining: total active collective work minus the
        // slowest rank's collective wall — the seconds of ring work that
        // ran concurrently with other ranks' work instead of extending
        // the critical path.
        let overlap = (sum_busy - max_collective_wall).max(0.0);
        self.metrics.record(Phase::CommOverlap, overlap);
        self.record_group_stats(replies.iter().filter_map(|(&rank, r)| match r {
            RingReply::Done(d) => Some((rank, d.group)),
            RingReply::Aborted => None,
        }));
        // Routing statistics come from each shard group's representative
        // only (TP/PP members duplicate the same DP slice) — its own
        // loads plus the adopted dead slices it computed (survivor ring).
        let num_groups = self.config.topology.num_dp_groups();
        let mut routing: Vec<&Vec<Vec<u64>>> = Vec::new();
        for (&rank, r) in &replies {
            let RingReply::Done(d) = r else { continue };
            if rank % num_groups != 0 {
                continue;
            }
            routing.push(&d.expert_loads);
            routing.extend(d.adopted_loads.iter());
        }
        self.record_routing(routing.into_iter());
        Ok(None)
    }

    /// Shared fault path of both collectives: surface detection events,
    /// enforce the forward-progress bound, recover, and (for a ring run)
    /// open the star-fallback window. Returns the resume iteration.
    fn handle_exchange_fault(
        &mut self,
        it: u64,
        missing: &[usize],
        aborted: &[usize],
        ring: bool,
        collect_start: Instant,
    ) -> Result<u64, RuntimeError> {
        let dead_nodes: BTreeSet<usize> = missing.iter().map(|&r| self.node_of(r)).collect();
        if !dead_nodes.is_empty() {
            let detect_secs = collect_start.elapsed().as_secs_f64();
            self.metrics.event(
                it,
                EventKind::FaultDetected {
                    nodes: dead_nodes.iter().copied().collect(),
                    detect_secs,
                },
            );
            // The detection span covers the failed collect that revealed
            // the dead nodes, stepping the open fault flow.
            let flow = self.fault_flow.map(Flow::Step).unwrap_or(Flow::None);
            let end = self.sink.now();
            self.sink.record(
                SpanKind::Fault,
                "fault-detected",
                it,
                (end - detect_secs).max(0.0),
                detect_secs,
                flow,
            );
        }
        if !aborted.is_empty() {
            if ring {
                self.metrics.ring_aborts += 1;
            }
            self.metrics.event(
                it,
                EventKind::CollectiveAbort {
                    aborted_ranks: aborted.to_vec(),
                    fallback_iterations: if ring {
                        self.config.ring_fallback_iterations
                    } else {
                        0
                    },
                },
            );
        }
        self.recoveries_without_progress += 1;
        assert!(
            self.recoveries_without_progress <= MAX_RECOVERIES_WITHOUT_PROGRESS,
            "{} consecutive recoveries without completing an iteration: \
             ranks are timing out repeatedly — if no faults were injected, \
             heartbeat_timeout ({:?}) is shorter than the iteration compute \
             time and healthy nodes are being declared dead",
            self.recoveries_without_progress,
            self.config.heartbeat_timeout,
        );
        self.recover(it, &dead_nodes)
    }

    /// Accumulates per-layer routing counters and PLT processed totals
    /// from every rank's expert loads.
    fn record_routing<'a>(&mut self, all_loads: impl Iterator<Item = &'a Vec<Vec<u64>>>) {
        for loads in all_loads {
            for (layer, layer_loads) in loads.iter().enumerate() {
                self.plt.record_processed(layer, layer_loads.iter().sum());
                for (slot, &l) in self.cum_routed[layer].iter_mut().zip(layer_loads) {
                    *slot += l;
                }
            }
        }
    }

    /// Feeds per-rank step samples (`(rank, step seconds, stall
    /// seconds)`) of a successful collection into the health scorer and
    /// surfaces its transitions: a run event plus a control-plane span
    /// when a rank leaves the healthy state, and maintenance of the
    /// corroboration set either way. No-op when health scoring is off.
    fn observe_health(&mut self, it: u64, samples: &[(usize, f64, f64)]) {
        let Some(scorer) = self.health.as_mut() else {
            return;
        };
        let mut transitions = Vec::new();
        for &(rank, step_secs, stall_secs) in samples {
            if let Some(t) = scorer.observe(rank, it, step_secs, stall_secs, 0) {
                transitions.push(t);
            }
        }
        for t in transitions {
            if t.to == HealthState::Healthy {
                self.health_degraded.remove(&t.rank);
            } else {
                self.health_degraded.insert(t.rank);
            }
            if t.from == HealthState::Healthy {
                self.metrics.event(
                    it,
                    EventKind::HealthDegraded {
                        rank: t.rank,
                        z: t.z,
                    },
                );
                let now = self.sink.now();
                self.sink.record(
                    SpanKind::Control,
                    "health-degraded",
                    it,
                    now,
                    0.0,
                    Flow::None,
                );
            }
        }
    }

    /// One heartbeat collection window for `collective`. Star in a mixed
    /// parallelism world doubles the per-receive window (like the ring
    /// collector's): survivors of a mid-group death only report after
    /// their own relay timeout fires. A flat-DP star world keeps the
    /// single heartbeat window, preserving the baseline's detection
    /// latency.
    fn collect_window(&self, collective: CollectiveKind) -> Duration {
        match collective {
            CollectiveKind::Star if self.config.topology.num_dp_groups() <= 1 => {
                self.config.heartbeat_timeout
            }
            _ => self.config.heartbeat_timeout * 2,
        }
    }

    /// Records the transition of `silent` ranks into the suspected set:
    /// the ranks newly suspected this miss get a timeline event, a fault
    /// span, and a flight-recorder dump — captured *now*, while the
    /// evidence of why they went silent is still in the ring buffers,
    /// not only if they are later declared dead.
    fn note_suspects(
        &mut self,
        iteration: u64,
        silent: &[usize],
        suspected: &mut BTreeSet<usize>,
        misses: u32,
    ) {
        let fresh: Vec<usize> = silent
            .iter()
            .copied()
            .filter(|&r| suspected.insert(r))
            .collect();
        if fresh.is_empty() {
            return;
        }
        self.metrics.suspicions += fresh.len() as u64;
        self.telemetry.add(Counter::Suspicions, fresh.len() as u64);
        self.metrics.event(
            iteration,
            EventKind::FaultSuspected {
                ranks: fresh.clone(),
                misses,
            },
        );
        self.sink.span(
            SpanKind::Fault,
            "fault-suspected",
            iteration,
            self.sink.now(),
        );
        self.collector.flight_dump(&format!(
            "ranks {fresh:?} suspected at iteration {iteration} after {misses} missed window(s)"
        ));
    }

    /// A suspected rank replied within its lease: re-admit it with no
    /// recovery and record the cleared suspicion.
    fn note_cleared(&mut self, iteration: u64, rank: usize, suspected: &mut BTreeSet<usize>) {
        if suspected.remove(&rank) {
            self.metrics.suspicions_cleared += 1;
            self.telemetry.incr(Counter::SuspicionsCleared);
            self.metrics
                .event(iteration, EventKind::SuspicionCleared { rank });
            self.sink
                .span(SpanKind::Fault, "fault-cleared", iteration, self.sink.now());
        }
    }

    /// Collects every rank's star report for `iteration` under the
    /// suspicion detector: a timed-out window marks the still-silent
    /// ranks suspected and grants them a lease; only `k_misses`
    /// consecutive misses end collection (declaring the holdouts). A
    /// suspected rank that replies mid-lease is re-admitted — no
    /// recovery. With `k_misses == 1` this is exactly the legacy
    /// single-miss detector.
    fn collect_star(&mut self, iteration: u64) -> BTreeMap<usize, StarReply> {
        let mut replies = BTreeMap::new();
        let window = self.collect_window(CollectiveKind::Star);
        let lease = self.config.detector.lease_for(window);
        let k = self.config.detector.k_misses;
        let mut misses = 0u32;
        let mut suspected = BTreeSet::new();
        while replies.len() < self.live_world() {
            let wait = if misses == 0 { window } else { lease };
            match self.events.recv_timeout(wait) {
                Ok(RankEvent::Grad {
                    rank,
                    iteration: it,
                    epoch,
                    grad,
                    expert_loads,
                    compute_secs,
                    stall_secs,
                    tp_consistent,
                    tp_sync_secs,
                    pp_wait_secs,
                    adopted,
                }) if it == iteration && epoch == self.epoch => {
                    replies.insert(
                        rank,
                        StarReply::Grad(GradResult {
                            grad,
                            expert_loads,
                            compute_secs,
                            stall_secs,
                            group: GroupStats {
                                tp_consistent,
                                tp_sync_secs,
                                pp_wait_secs,
                            },
                            adopted,
                        }),
                    );
                    self.note_cleared(iteration, rank, &mut suspected);
                    misses = 0;
                }
                Ok(RankEvent::StepAborted {
                    rank,
                    iteration: it,
                    epoch,
                }) if it == iteration && epoch == self.epoch => {
                    replies.insert(rank, StarReply::Aborted);
                    self.note_cleared(iteration, rank, &mut suspected);
                    misses = 0;
                }
                Ok(_) => {} // stale event from before a recovery
                Err(RecvTimeoutError::Timeout) => {
                    misses += 1;
                    let silent: Vec<usize> = (0..self.live.len())
                        .filter(|&r| self.live[r] && !replies.contains_key(&r))
                        .collect();
                    if misses >= self.effective_k(k, &silent) {
                        break;
                    }
                    self.note_suspects(iteration, &silent, &mut suspected, misses);
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        replies
    }

    /// Collects every rank's ring report for `iteration`. The window per
    /// receive is twice the heartbeat: survivors of a mid-collective
    /// death only report after their *own* ring timeout fires, so the
    /// coordinator must outwait detection-by-proxy, not just compute.
    /// Runs the same suspicion protocol as [`Self::collect_star`].
    fn collect_ring(&mut self, iteration: u64) -> BTreeMap<usize, RingReply> {
        let mut replies = BTreeMap::new();
        let window = self.collect_window(CollectiveKind::Ring);
        let lease = self.config.detector.lease_for(window);
        let k = self.config.detector.k_misses;
        let mut misses = 0u32;
        let mut suspected = BTreeSet::new();
        while replies.len() < self.live_world() {
            let wait = if misses == 0 { window } else { lease };
            match self.events.recv_timeout(wait) {
                Ok(RankEvent::StepDone {
                    rank,
                    iteration: it,
                    epoch,
                    expert_loads,
                    adopted_loads,
                    compute_secs,
                    stall_secs,
                    reduce_scatter_secs,
                    all_gather_secs,
                    ring_wait_secs,
                    apply_secs,
                    tp_consistent,
                    tp_sync_secs,
                    pp_wait_secs,
                }) if it == iteration && epoch == self.epoch => {
                    replies.insert(
                        rank,
                        RingReply::Done(RingDone {
                            expert_loads,
                            adopted_loads,
                            compute_secs,
                            stall_secs,
                            reduce_scatter_secs,
                            all_gather_secs,
                            ring_wait_secs,
                            apply_secs,
                            group: GroupStats {
                                tp_consistent,
                                tp_sync_secs,
                                pp_wait_secs,
                            },
                        }),
                    );
                    self.note_cleared(iteration, rank, &mut suspected);
                    misses = 0;
                }
                Ok(RankEvent::StepAborted {
                    rank,
                    iteration: it,
                    epoch,
                }) if it == iteration && epoch == self.epoch => {
                    replies.insert(rank, RingReply::Aborted);
                    self.note_cleared(iteration, rank, &mut suspected);
                    misses = 0;
                }
                Ok(_) => {} // stale event from before a recovery
                Err(RecvTimeoutError::Timeout) => {
                    misses += 1;
                    let silent: Vec<usize> = (0..self.live.len())
                        .filter(|&r| self.live[r] && !replies.contains_key(&r))
                        .collect();
                    if misses >= self.effective_k(k, &silent) {
                        break;
                    }
                    self.note_suspects(iteration, &silent, &mut suspected, misses);
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        replies
    }

    /// The miss threshold in force for this collection's silent set:
    /// when every silent rank was already scored degraded by the health
    /// plane, their silence corroborates an existing signal and the
    /// detector declares one lease window sooner
    /// ([`crate::DetectorConfig::corroborated_k`]). A mixed silent set keeps
    /// the full threshold — a healthy rank must get its whole lease.
    fn effective_k(&self, k: u32, silent: &[usize]) -> u32 {
        if !silent.is_empty() && silent.iter().all(|r| self.health_degraded.contains(r)) {
            self.config.detector.corroborated_k()
        } else {
            k
        }
    }

    /// Upper bound on how long the coordinator waits for a reply that is
    /// not allowed to go missing (barrier acks, shard serialization,
    /// restores). A rank-thread panic leaves the events channel open — the
    /// coordinator holds a sender for respawns — so without this cap such
    /// a bug would hang the run instead of failing it loudly.
    fn reply_deadline(&self) -> std::time::Duration {
        (self.config.heartbeat_timeout * 10).max(std::time::Duration::from_secs(60))
    }

    /// Receives the next event, panicking (not hanging) if no rank
    /// replies within the deadline.
    fn recv_reply(&self, context: &str) -> RankEvent {
        match self.events.recv_timeout(self.reply_deadline()) {
            Ok(event) => event,
            Err(e) => panic!("rank lost during {context} ({e:?})"),
        }
    }

    /// Waits for every rank's apply acknowledgement (the barrier
    /// release). Non-matching events are stale and discarded.
    fn wait_applied(&self) {
        let mut acks = HashSet::new();
        while acks.len() < self.live_world() {
            if let RankEvent::Applied { rank } = self.recv_reply("apply barrier") {
                acks.insert(rank);
            }
        }
    }

    /// Gathers one `Shards` reply per live rank, returning `(rank, jobs)`
    /// plus the slowest serialization time.
    fn collect_shards(&mut self, record_metrics: bool) -> (Vec<(usize, Vec<ShardJob>)>, f64) {
        let mut out: BTreeMap<usize, Vec<ShardJob>> = BTreeMap::new();
        let mut max_serialize = 0.0f64;
        while out.len() < self.live_world() {
            // Non-matching events are stale and discarded.
            if let RankEvent::Shards {
                rank,
                jobs,
                serialize_secs,
            } = self.recv_reply("checkpoint collection")
            {
                max_serialize = max_serialize.max(serialize_secs);
                out.insert(rank, jobs);
            }
        }
        if record_metrics {
            self.metrics.record(Phase::CkptSerialize, max_serialize);
        }
        (out.into_iter().collect(), max_serialize)
    }

    /// Groups per-rank shard jobs by hosting node. Every *live* node
    /// gets an entry (possibly empty), so every live node's manifest
    /// chain advances at every checkpoint — the commit rule over the
    /// live writer set requires it. Dead nodes get nothing: their chains
    /// freeze at their last pre-fault commit.
    fn group_by_node(&self, shards: Vec<(usize, Vec<ShardJob>)>) -> BTreeMap<usize, Vec<ShardJob>> {
        let mut per_node: BTreeMap<usize, Vec<ShardJob>> = (0..self.nodes.len())
            .filter(|&n| self.nodes[n].alive())
            .map(|n| (n, Vec::new()))
            .collect();
        for (rank, jobs) in shards {
            let node = self.node_of(rank);
            debug_assert!(self.nodes[node].alive(), "shards only from live ranks");
            per_node.entry(node).or_default().extend(jobs);
        }
        per_node
    }

    /// Synchronous write: submit to every node's engine and block until
    /// the pipelines drained — the paper's baseline behaviour of paying
    /// the full persist inside the iteration. Returns the blocking wall
    /// time (the persist-tier calibration sample).
    fn write_sync(&mut self, version: u64, shards: Vec<(usize, Vec<ShardJob>)>) -> f64 {
        let start = Instant::now();
        self.submit_and_drain(version, shards);
        let secs = start.elapsed().as_secs_f64();
        self.metrics.record(Phase::CkptWrite, secs);
        secs
    }

    /// Untimed submit + drain (bootstrap and sync mode share it).
    fn submit_and_drain(&mut self, version: u64, shards: Vec<(usize, Vec<ShardJob>)>) {
        for (node, jobs) in self.group_by_node(shards) {
            self.nodes[node].submit(version, jobs);
        }
        for node in self.nodes.iter().filter(|n| n.alive()) {
            node.wait_idle();
        }
    }

    /// Asynchronous submission through the per-node engines: copies into
    /// pooled buffers and enqueues; no store I/O on this thread.
    fn submit_async(&mut self, version: u64, shards: Vec<(usize, Vec<ShardJob>)>) -> Vec<usize> {
        let per_node = self.group_by_node(shards);
        let mut stalled_nodes = Vec::new();
        let start = Instant::now();
        for (node, jobs) in per_node {
            // Each per-node submission starts a checkpoint flow arrow;
            // the node engine's background `persist` span ends it.
            let submit_trace = self.sink.now();
            let stalled = self.nodes[node].submit(version, jobs);
            self.sink.record(
                SpanKind::Ckpt,
                "ckpt-submit",
                version,
                submit_trace,
                self.sink.now() - submit_trace,
                Flow::Start(ckpt_flow_id(version, node)),
            );
            if stalled {
                self.metrics.stall_count += 1;
                self.telemetry.incr(Counter::CkptStalls);
                stalled_nodes.push(node);
            }
        }
        self.metrics
            .record(Phase::CkptSubmit, start.elapsed().as_secs_f64());
        stalled_nodes
    }

    fn checkpoint(&mut self, iteration: u64) {
        let t = self.ckpt_index;
        self.ckpt_index += 1;
        // The engine's PartialPlan rotates persist-PEC independently with
        // stride `k_persist`, so its coverage never stalls when
        // `K_snapshot` is large, and pulls persist-due experts into the
        // snapshot window so persist ⊆ serialized holds on the live path
        // (§5.1's key-value retrieval, deterministically).
        let selection = self.plan.at(t);
        let snapshot = Arc::new(selection.snapshot);
        let persist = Arc::new(selection.persist);
        let overhead_start = Instant::now();
        let collect_trace = self.sink.now();
        self.send_all(&RankCommand::Checkpoint {
            iteration,
            snapshot,
            persist,
        });
        let (shards, serialize_secs) = self.collect_shards(true);
        self.sink
            .span(SpanKind::Ckpt, "ckpt-collect", iteration, collect_trace);
        // Calibration samples: serialized bytes against the serialize
        // wall (snapshot tier), and — in sync mode — persisted bytes
        // against the blocking write wall (persist tier).
        let serialized_bytes: u64 = shards
            .iter()
            .flat_map(|(_, jobs)| jobs.iter())
            .map(|j| j.payload.len() as u64)
            .sum();
        let persist_bytes: u64 = shards
            .iter()
            .flat_map(|(_, jobs)| jobs.iter())
            .filter(|j| j.persist)
            .map(|j| j.payload.len() as u64)
            .sum();
        self.snapshot_samples
            .push((serialized_bytes, serialize_secs));
        let stalled_nodes = match self.config.checkpoint_mode {
            CheckpointMode::Sync => {
                let write_trace = self.sink.now();
                let write_secs = self.write_sync(iteration, shards);
                self.sink.record(
                    SpanKind::Ckpt,
                    "ckpt-write",
                    iteration,
                    write_trace,
                    write_secs,
                    Flow::None,
                );
                self.persist_samples.push((persist_bytes, write_secs));
                Vec::new()
            }
            CheckpointMode::Async => self.submit_async(iteration, shards),
        };
        self.record_routed_at(iteration);
        self.metrics.checkpoints_taken += 1;
        let overhead_secs = overhead_start.elapsed().as_secs_f64();
        self.telemetry.add(Counter::CkptBytes, serialized_bytes);
        self.telemetry.add_secs(Counter::CkptNanos, overhead_secs);
        self.metrics.event(
            iteration,
            EventKind::Checkpoint {
                stalled_nodes,
                overhead_secs,
            },
        );
    }

    /// Records the cumulative routing counters at a checkpoint version,
    /// pruning versions old enough that no recovery can restore them any
    /// more: with `k_persist >= 1` every expert persists at least once per
    /// `num_experts` checkpoints, so versions older than the last
    /// `2 * num_experts` checkpoints (plus the bootstrap at 0, kept
    /// forever) can never be chosen by a recovery plan.
    fn record_routed_at(&mut self, iteration: u64) {
        if self
            .routed_at
            .insert(iteration, self.cum_routed.clone())
            .is_none()
        {
            self.ckpt_history.push(iteration);
        }
        let cap = 2 * self.plan.num_experts + 1;
        while self.ckpt_history.len() > cap {
            let old = self.ckpt_history.remove(0);
            self.routed_at.remove(&old);
        }
    }

    fn eval(&mut self) -> f32 {
        // Replicas are bitwise identical, so any live rank evaluates the
        // same loss; rank 0 unless its shard group died in a shrink.
        self.cmd_txs[self.first_live_rank()]
            .send(RankCommand::Eval)
            .expect("eval rank alive");
        loop {
            // Non-matching events are stale and discarded.
            if let RankEvent::EvalLoss { loss } = self.recv_reply("evaluation") {
                return loss;
            }
        }
    }

    /// Executes a live two-level recovery after `dead_nodes` were detected
    /// at `detected_at`, returning the iteration training resumes from.
    fn recover(
        &mut self,
        detected_at: u64,
        dead_nodes: &BTreeSet<usize>,
    ) -> Result<u64, RuntimeError> {
        let recovery_start = Instant::now();
        let recovery_trace = self.sink.now();
        // No dead nodes means a collective aborted without anyone dying
        // (mesh drop, super-window delay): membership is untouched and
        // the recovery degenerates to a rollback of the live world.
        let rollback_only = dead_nodes.is_empty();
        // The moment the coordinator declares the fault, snapshot every
        // thread's flight-recorder ring — the dead ranks' final spans are
        // still in their rings even though the threads are gone.
        self.collector.flight_dump(&if rollback_only {
            format!("collective aborted at iteration {detected_at}: rolling back, no deaths")
        } else {
            format!("fault detected at iteration {detected_at}: dead nodes {dead_nodes:?}")
        });
        // Invalidate replies from threads spawned before this recovery.
        self.epoch += 1;
        // Quiesce surviving agents so the plan sees settled tiers.
        for node in &self.nodes {
            node.wait_idle();
        }
        for &node in dead_nodes {
            self.memory.fault(NodeId(node));
            self.nodes[node].set_alive(false);
        }
        let healthy: Vec<bool> = self.nodes.iter().map(NodeRuntime::alive).collect();

        let slots: Vec<(String, StatePart)> = self
            .module_names
            .iter()
            .flat_map(|m| {
                [
                    (m.clone(), StatePart::Weights),
                    (m.clone(), StatePart::Optimizer),
                ]
            })
            .collect();
        // Recovery plans against the *committed* chain view, not the raw
        // store: delta shards reconstruct transparently and a torn
        // persist (shards without their manifest) is invisible, so the
        // plan can only choose state that restores bit-for-bit. The
        // commit rule spans the writers that were alive up to this fault
        // — nodes already lost to an earlier shrink stopped committing
        // at their death, so requiring them would freeze the commit
        // frontier at the pre-shrink checkpoint (their frozen chains
        // still *serve* their old shards).
        let required: Vec<usize> = (0..self.nodes.len())
            .filter(|n| healthy[*n] || dead_nodes.contains(n))
            .collect();
        let chain = ChainStore::load_for_writers(self.store.clone(), &required)
            .map_err(RecoveryError::from)?;
        let outcome = execute_recovery(
            &slots,
            &self.memory,
            &chain,
            &healthy,
            detected_at,
            self.config.two_level,
        )?;
        self.metrics.record(Phase::RecoveryPlan, outcome.plan_secs);
        self.metrics
            .record(Phase::RecoveryFetch, outcome.fetch_secs);
        let exec_trace = self.sink.now() - outcome.plan_secs - outcome.fetch_secs;
        self.sink.record(
            SpanKind::Fault,
            "recovery-plan",
            detected_at,
            exec_trace,
            outcome.plan_secs,
            Flow::None,
        );
        self.sink.record(
            SpanKind::Fault,
            "recovery-fetch",
            detected_at,
            exec_trace + outcome.plan_secs,
            outcome.fetch_secs,
            Flow::None,
        );
        self.metrics.recoveries += 1;
        self.metrics.recovered_bytes += outcome.bytes;
        self.metrics.memory_hits += outcome.memory_hits as u64;
        self.metrics.storage_hits += outcome.storage_hits as u64;

        let resume = outcome.plan.resume_iteration;
        let fault_plt = self.account_plt(&outcome, resume);
        self.k_trace.push(self.plan.k_snapshot);
        if let Some(ctl) = self.dynamic_k.as_mut() {
            // The controller escalates *both* levels: once K saturates at
            // N, every checkpoint persists everything and PLT growth
            // stops entirely — the property that lets the budget bound
            // hold under fault accumulation (Section 5.3).
            let new_k = ctl.on_fault_recovery(fault_plt);
            let k_persist = self.plan.k_persist.max(new_k.min(self.plan.num_experts));
            self.plan = self.plan.with_k(new_k, k_persist);
        }

        // A dead rank drags its whole shard group — the `tp · pp` ranks
        // sharing its DP index, which jointly own the group's checkpoint
        // shards — through the rollback.
        let shard_groups: BTreeSet<usize> = dead_nodes
            .iter()
            .flat_map(|&node| self.config.topology.global_ranks_on_node(node))
            .map(|rank| self.config.topology.coords_of(rank).dp)
            .collect();
        self.metrics.shard_groups_recovered += shard_groups.len() as u64;
        // How many restored expert shards the dead shard groups own under
        // the group keying in effect at the fault — the part of the
        // restore that recovered *their* state rather than rolling
        // survivors back.
        let group_owned_shards = outcome
            .plan
            .actions
            .iter()
            .filter(|a| shard_groups.contains(&self.module_owner_coord(&a.module).dp))
            .count();

        // Elastic shrink is possible whenever at least one shard group
        // survives the fault; with nobody left to shrink onto, even an
        // elastic run must fall back to respawning.
        let all_dead: BTreeSet<usize> = self
            .dead_groups
            .iter()
            .copied()
            .chain(shard_groups.iter().copied())
            .collect();
        let shrink = !rollback_only
            && self.config.elastic.shrink
            && all_dead.len() < self.config.topology.num_shard_groups();

        let mut rejoin_barrier = false;
        if rollback_only {
            // Membership is unchanged: nobody to retire, nobody to
            // respawn. (Entering the shrink path here would spuriously
            // start a degraded window for an empty dead set.)
        } else if shrink {
            self.shrink_rebalance(resume, &shard_groups, &all_dead);
        } else {
            // Restart the dead nodes' ranks with fresh threads (the
            // fixed-shape respawn recovery). When an elastic run lost
            // its last survivors there is nobody to shrink onto, so the
            // whole world restarts: ranks retired by earlier shrinks
            // respawn too, and the placement returns home.
            let mut to_respawn: BTreeSet<usize> = dead_nodes
                .iter()
                .flat_map(|&node| self.config.topology.global_ranks_on_node(node))
                .collect();
            to_respawn.extend((0..self.world()).filter(|&r| !self.live[r]));
            // Reviving writers retired by an earlier shrink: their
            // frozen chains need the rejoin barrier below.
            rejoin_barrier = !self.dead_groups.is_empty();
            for rank in to_respawn {
                let (tx, handle) = self.spawn_rank(rank);
                let old_tx = std::mem::replace(&mut self.cmd_txs[rank], tx);
                drop(old_tx);
                if let Some(old) = self.handles[rank].take() {
                    let _ = old.join();
                }
                self.handles[rank] = Some(handle);
                self.live[rank] = true;
            }
            for node in &mut self.nodes {
                node.set_alive(true);
            }
            if let Some(placement) = &self.placement {
                let returning = std::mem::take(&mut self.dead_groups);
                self.placement = Some(placement.restored(&returning).0);
                self.adoptions.clear();
                self.degraded_since = None;
                self.send_reconfigure();
            }
        }

        // Rebuild the collective wiring: fresh channels drop anything the
        // aborted collectives stranded, and respawned ranks need
        // endpoints. A ring or hierarchical run additionally falls back
        // to the star path for the configured window of post-recovery
        // iterations; once the window closes a shrunk run continues on
        // the survivor ring (dead slots driven by their adopters), not
        // the star. Training resumes at `resume + 1`, so this opens
        // exactly `ring_fallback_iterations` star iterations.
        self.build_links();
        self.open_star_fallback(resume + 1);

        // Broadcast restored state; every live rank (survivor or
        // respawned) rolls back to the recovered versions.
        let restore_start = Instant::now();
        let restore_trace = self.sink.now();
        let blobs = Arc::new(outcome.blobs);
        self.send_all(&RankCommand::Restore { blobs });
        let mut restored = HashSet::new();
        while restored.len() < self.live_world() {
            // Stale pre-recovery events are drained and discarded here.
            if let RankEvent::Restored { rank } = self.recv_reply("restore") {
                restored.insert(rank);
            }
        }
        self.metrics.record(
            Phase::RecoveryRestore,
            restore_start.elapsed().as_secs_f64(),
        );
        self.sink.span(
            SpanKind::Fault,
            "recovery-restore",
            detected_at,
            restore_trace,
        );

        // Rewind bookkeeping: routing statistics return to the resume
        // iteration; the data stream rewinds implicitly (batches are a
        // pure function of the iteration number).
        self.cum_routed = self
            .routed_at
            .get(&resume)
            .expect("resume iteration was checkpointed")
            .clone();
        if rejoin_barrier {
            self.barrier_checkpoint(resume);
        }
        self.metrics.event(
            detected_at,
            EventKind::Recovery {
                resume_iteration: resume,
                memory_hits: outcome.memory_hits,
                storage_hits: outcome.storage_hits,
                total_secs: recovery_start.elapsed().as_secs_f64(),
                shard_groups: shard_groups.into_iter().collect(),
                group_owned_shards,
            },
        );
        self.telemetry.incr(Counter::Recoveries);
        self.telemetry.add_secs(
            Counter::RecoveryNanos,
            recovery_start.elapsed().as_secs_f64(),
        );
        // The parent recovery span closes the fault flow opened by the
        // injection (arrow: fault-injected → fault-detected → recovery).
        let flow = self.fault_flow.take().map(Flow::End).unwrap_or(Flow::None);
        self.sink.record(
            SpanKind::Fault,
            "recovery",
            detected_at,
            recovery_trace,
            self.sink.now() - recovery_trace,
            flow,
        );
        Ok(resume)
    }

    /// The elastic shrink: instead of respawning, the surviving shard
    /// groups adopt the dead groups' DP batch slices and experts, and
    /// training continues on the reduced world within the same run. The
    /// newly dead groups' ranks are retired (members on healthy nodes
    /// are orphaned — a shard group cannot function without its dead
    /// members), the placement migrates expert ownership onto surviving
    /// replicas, and every live rank is reconfigured with its new
    /// duties.
    fn shrink_rebalance(
        &mut self,
        resume: u64,
        newly_dead: &BTreeSet<usize>,
        all_dead: &BTreeSet<usize>,
    ) {
        let start = Instant::now();
        let topo = self.config.topology;
        let group_span = topo.tp() * topo.pp();
        for &g in newly_dead {
            for rank in g * group_span..(g + 1) * group_span {
                self.live[rank] = false;
                // Replacing the sender drops the old channel, so an
                // orphaned member on a healthy node exits its command
                // loop and can be joined at shutdown (members on the
                // dead nodes already exited mid-iteration).
                let (dangling, _) = unbounded();
                drop(std::mem::replace(&mut self.cmd_txs[rank], dangling));
            }
        }

        let placement = self
            .placement
            .as_ref()
            .expect("elastic mode plans placement");
        let plan = plan_shrink(placement, all_dead).expect("a shard group survives");
        let experts_migrated = plan.experts_migrated();
        self.metrics.experts_migrated += experts_migrated as u64;
        self.adoptions = plan.adoptions;
        self.placement = Some(plan.placement);
        self.dead_groups = all_dead.clone();
        if self.degraded_since.is_none() {
            // First shrink of this degraded window: snapshot the executed
            // counter so the expand can report the window's length as a
            // counter delta. A second shrink extends the same window.
            self.degraded_counter_base = self.metrics.degraded_iterations;
        }
        self.degraded_since = Some(resume);
        self.metrics.elastic_shrinks += 1;
        self.send_reconfigure();

        let shrink_secs = start.elapsed().as_secs_f64();
        self.metrics.record(Phase::ShrinkRebalance, shrink_secs);
        self.sink.record(
            SpanKind::Elastic,
            "shrink-rebalance",
            resume,
            self.sink.now() - shrink_secs,
            shrink_secs,
            Flow::None,
        );
        self.metrics.event(
            resume,
            EventKind::ElasticShrink {
                dead_groups: newly_dead.iter().copied().collect(),
                adoptions: self.adoptions.iter().map(|(&d, &a)| (d, a)).collect(),
                experts_migrated,
                shrink_secs,
            },
        );
    }

    /// The elastic expand: replacement ranks rejoin at iteration `it`,
    /// seeded bitwise from a survivor's replica, and the placement and
    /// batch slices return home. The expanded world continues on the
    /// survivors' exact trajectory — the rejoin is numerically
    /// invisible.
    fn expand(&mut self, it: u64) {
        let start = Instant::now();
        // Export the replica template first: every live rank holds the
        // same bits, so the lowest-indexed one serves.
        self.cmd_txs[self.first_live_rank()]
            .send(RankCommand::ExportState)
            .expect("export rank alive");
        let blobs = loop {
            if let RankEvent::StateExport { blobs } = self.recv_reply("state export") {
                break blobs;
            }
        };

        let returning = std::mem::take(&mut self.dead_groups);
        let mut new_ranks = Vec::new();
        for rank in 0..self.world() {
            if self.live[rank] {
                continue;
            }
            let (tx, handle) = self.spawn_rank(rank);
            drop(std::mem::replace(&mut self.cmd_txs[rank], tx));
            if let Some(old) = self.handles[rank].take() {
                let _ = old.join();
            }
            self.handles[rank] = Some(handle);
            self.live[rank] = true;
            new_ranks.push(rank);
        }
        for node in &mut self.nodes {
            node.set_alive(true);
        }

        let placement = self
            .placement
            .as_ref()
            .expect("elastic mode plans placement");
        let plan = plan_expand(placement, &returning);
        let experts_returned = plan.experts_returned;
        self.placement = Some(plan.placement);
        self.adoptions.clear();
        self.degraded_since = None;
        // Degraded-window length reported on the expand event: the delta
        // of the per-iteration counter (incremented only when an
        // iteration actually completes degraded) since the window's
        // first shrink — not re-derived from iteration numbers, which
        // double-counted rolled-back iterations when a second kill
        // landed inside the window.
        let degraded_iterations = self
            .metrics
            .degraded_iterations
            .saturating_sub(self.degraded_counter_base);

        // Fresh wiring (the returning ranks need endpoints), bitwise
        // seed, then the restored duty map.
        self.build_links();
        let blobs = Arc::new(blobs);
        for &rank in &new_ranks {
            self.cmd_txs[rank]
                .send(RankCommand::Restore {
                    blobs: blobs.clone(),
                })
                .expect("respawned rank alive");
        }
        let mut seeded = HashSet::new();
        while seeded.len() < new_ranks.len() {
            if let RankEvent::Restored { rank } = self.recv_reply("expand seed") {
                seeded.insert(rank);
            }
        }
        self.send_reconfigure();
        // The expand runs before iteration `it` executes, so `it` is the
        // first post-transition iteration: the same
        // `ring_fallback_iterations`-long star window as after a
        // recovery.
        self.open_star_fallback(it);
        // Rejoin barrier: the returning writers' chains froze at the
        // shrink and the survivors may have GC'd every version the two
        // sides shared, so all live writers re-commit the current state
        // — otherwise a fault right after the expand would find no
        // commonly committed version to recover from.
        self.barrier_checkpoint(it - 1);

        self.metrics.elastic_expands += 1;
        let expand_secs = start.elapsed().as_secs_f64();
        self.metrics.record(Phase::ExpandRestore, expand_secs);
        self.sink.record(
            SpanKind::Elastic,
            "expand-restore",
            it,
            self.sink.now() - expand_secs,
            expand_secs,
            Flow::None,
        );
        self.metrics.event(
            it,
            EventKind::ElasticExpand {
                returning_groups: returning.into_iter().collect(),
                experts_returned,
                degraded_iterations,
                expand_secs,
            },
        );
    }

    /// Exact lost-token accounting (Eq. 7): for every expert restored at
    /// version `v`, the tokens it routed between `v` and the resume
    /// iteration are lost.
    fn account_plt(&mut self, outcome: &RecoveryOutcome, resume: u64) -> f64 {
        let layers = self.config.model.num_moe_layers();
        let routed_r = self
            .routed_at
            .get(&resume)
            .expect("resume iteration was checkpointed")
            .clone();
        // BTreeMap keeps the accumulation order deterministic (f64 sums
        // feed the Dynamic-K thresholds).
        let mut expert_versions: BTreeMap<ExpertId, u64> = BTreeMap::new();
        for action in &outcome.plan.actions {
            if let Some(id) = expert_of(&self.config.model, &action.module) {
                let v = expert_versions.entry(id).or_insert(u64::MAX);
                *v = (*v).min(action.version);
            }
        }
        let mut fault_plt = 0.0;
        for (id, version) in expert_versions {
            let routed_v = self
                .routed_at
                .get(&version)
                .expect("expert restored from a recorded version");
            let lost = routed_r[id.layer][id.expert].saturating_sub(routed_v[id.layer][id.expert]);
            self.plt.record_loss(id.layer, lost);
            if self.plt.processed(id.layer) > 0 {
                fault_plt += lost as f64 / self.plt.processed(id.layer) as f64;
            }
        }
        fault_plt / layers as f64
    }

    fn finish(mut self) -> Result<RunSummary, RuntimeError> {
        let worst_window = self.collect_window(CollectiveKind::Ring);
        // Drain in-flight persists before measuring final storage state.
        for node in self.nodes.iter().filter(|n| n.alive()) {
            node.wait_idle();
        }
        self.send_all(&RankCommand::Finish);
        let mut finals: BTreeMap<usize, (Vec<f32>, u32)> = BTreeMap::new();
        while finals.len() < self.live_world() {
            if let RankEvent::Finished {
                rank,
                params,
                param_crc,
            } = self.recv_reply("shutdown")
            {
                finals.insert(rank, (params, param_crc));
            }
        }
        // Dropping the dead ranks' senders (done at shrink time) ended
        // their threads; every handle joins cleanly.
        drop(self.cmd_txs);
        for handle in self.handles.iter_mut().filter_map(Option::take) {
            let _ = handle.join();
        }
        let mut ckpt_engine = EngineStats::default();
        for node in &mut self.nodes {
            ckpt_engine.merge(&node.shutdown());
        }
        // Every rank thread joined and every engine writer exited, so all
        // sinks have flushed their thread-local buffers; merging the
        // coordinator's own spans last completes the trace.
        self.sink.flush();
        // The audit's detection-latency bound: the detector's worst-case
        // declaration time over the widest collect window, doubled for
        // recv_timeout overshoot on oversubscribed hosts, plus constant
        // slack for the rank-side step preceding the collection (the
        // injection span opens at iteration start, before collect).
        self.collector.set_detect_bound(
            2.0 * self
                .config
                .detector
                .declare_after(worst_window)
                .as_secs_f64()
                + 5.0,
        );
        let health = self.health.as_ref().map(HealthScorer::report);
        if let Some(report) = &health {
            if let Some(trace) = &self.config.obs.trace_path {
                // Best effort, like every other observability artifact.
                let _ = std::fs::write(
                    trace.with_file_name("health.json"),
                    report.to_json().pretty() + "\n",
                );
            }
        }
        let obs = self.collector.finish();

        let lead = *finals.keys().next().expect("a live rank reported");
        let crc0 = finals[&lead].1;
        let replicas_consistent = finals.values().all(|(_, crc)| *crc == crc0);
        let final_params = finals.remove(&lead).expect("lead rank reported").0;
        let final_val_loss = self.val_curve.last().map(|&(_, l)| l).unwrap_or(f32::NAN);
        let persisted_bytes = self.store.total_bytes().unwrap_or(0);

        Ok(RunSummary {
            val_curve: self.val_curve,
            final_val_loss,
            plt: self.plt.plt(),
            k_trace: self.k_trace,
            iterations_executed: self.metrics.iterations_executed,
            checkpoints_taken: self.metrics.checkpoints_taken,
            faults_injected: self.metrics.faults_injected,
            stragglers_injected: self.metrics.stragglers_injected,
            ring_aborts: self.metrics.ring_aborts,
            collective_allocs: self.metrics.collective_allocs,
            recoveries: self.metrics.recoveries,
            suspicions: self.metrics.suspicions,
            suspicions_cleared: self.metrics.suspicions_cleared,
            store_retries: self.retry_store.retries(),
            store_retry_exhaustions: self.retry_store.exhaustions(),
            shard_groups_recovered: self.metrics.shard_groups_recovered,
            elastic_shrinks: self.metrics.elastic_shrinks,
            elastic_expands: self.metrics.elastic_expands,
            experts_migrated: self.metrics.experts_migrated,
            degraded_iterations: self.metrics.degraded_iterations,
            survivor_ring_iterations: self.metrics.survivor_ring_iterations,
            hierarchical_iterations: self.metrics.hierarchical_iterations,
            tp_groups_consistent: self.metrics.tp_divergences == 0,
            stall_count: self.metrics.stall_count,
            recovered_bytes: self.metrics.recovered_bytes,
            memory_hits: self.metrics.memory_hits,
            storage_hits: self.metrics.storage_hits,
            persisted_bytes,
            ckpt_engine,
            snapshot_samples: self.snapshot_samples,
            persist_samples: self.persist_samples,
            phases: self.metrics.phases().clone(),
            timeline: self.metrics.timeline().to_vec(),
            loop_secs: self.metrics.loop_secs,
            i_ckpt: self.config.i_ckpt,
            final_params,
            replicas_consistent,
            obs,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::topology::ParallelTopology;
    use moc_store::{FaultEvent, FaultPlan, MemoryObjectStore};

    fn quick_config() -> RuntimeConfig {
        RuntimeConfig {
            total_iterations: 12,
            i_ckpt: 4,
            eval_every: 6,
            seq_len: 16,
            ..RuntimeConfig::tiny(ParallelTopology::dp_ep(2, 2, 4, 4).unwrap())
        }
    }

    fn run(config: RuntimeConfig) -> RunSummary {
        Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn fault_free_run_trains_and_stays_consistent() {
        let summary = run(quick_config());
        assert!(summary.replicas_consistent, "replicas diverged");
        assert_eq!(summary.iterations_executed, 12);
        assert_eq!(summary.checkpoints_taken, 3);
        assert_eq!(summary.faults_injected, 0);
        assert_eq!(summary.plt, 0.0);
        let first = summary.val_curve.first().unwrap().1;
        assert!(
            summary.final_val_loss < first,
            "loss should fall: {first} -> {}",
            summary.final_val_loss
        );
    }

    #[test]
    fn identical_seeds_reproduce_bitwise() {
        let a = run(quick_config());
        let b = run(quick_config());
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.val_curve, b.val_curve);
    }

    /// Satellite: both window-opening paths (recover passes `resume + 1`,
    /// expand passes the iteration about to execute) route through
    /// `open_star_fallback`, which grants exactly
    /// `ring_fallback_iterations` star iterations; degraded runs then
    /// fall to the survivor ring, full-shape runs to the configured
    /// collective; a star-configured run never tracks a window.
    #[test]
    fn star_fallback_window_arithmetic_is_uniform() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut run = Run::start(quick_config(), store.clone()).unwrap();
        let fallback = run.config.ring_fallback_iterations;
        assert!(fallback > 0, "tiny() must configure a non-empty window");
        run.open_star_fallback(6);
        assert_eq!(run.star_fallback_until, 6 + fallback);
        assert_eq!(run.collective_for(6 + fallback - 1), CollectiveKind::Star);
        assert_eq!(run.collective_for(6 + fallback), CollectiveKind::Ring);
        // A degraded run past the window runs the survivor ring.
        run.degraded_since = Some(5);
        assert_eq!(run.collective_for(6 + fallback), CollectiveKind::Ring);
        drop(run);

        // Hierarchical: the window closes into the leader chain at full
        // shape, into the survivor ring while degraded.
        let mut hier = Run::start(
            RuntimeConfig {
                collective: CollectiveKind::Hierarchical,
                ..quick_config()
            },
            store.clone(),
        )
        .unwrap();
        hier.open_star_fallback(3);
        assert_eq!(hier.collective_for(3 + fallback - 1), CollectiveKind::Star);
        assert_eq!(
            hier.collective_for(3 + fallback),
            CollectiveKind::Hierarchical
        );
        hier.degraded_since = Some(2);
        assert_eq!(hier.collective_for(3 + fallback), CollectiveKind::Ring);
        drop(hier);

        // Star-configured runs never open a window: the star already is
        // the steady state.
        let mut star = Run::start(
            RuntimeConfig {
                collective: CollectiveKind::Star,
                ..quick_config()
            },
            store,
        )
        .unwrap();
        star.open_star_fallback(6);
        assert_eq!(star.star_fallback_until, 0);
        assert_eq!(star.collective_for(11), CollectiveKind::Star);
    }

    #[test]
    fn node_kill_recovers_and_resumes() {
        let config = RuntimeConfig {
            faults: FaultPlan::At(vec![FaultEvent {
                iteration: 7,
                node: 1,
            }]),
            heartbeat_timeout: std::time::Duration::from_millis(500),
            ..quick_config()
        };
        let summary = run(config);
        assert_eq!(summary.faults_injected, 1);
        assert_eq!(summary.recoveries, 1);
        assert!(summary.replicas_consistent);
        // Rolled back from 7 to the checkpoint at 4: 3 redone iterations.
        assert_eq!(summary.iterations_executed, 12 + 3);
        assert!(summary.recovered_bytes > 0);
        assert!(summary.memory_hits + summary.storage_hits > 0);
    }

    #[test]
    fn persist_rotation_covers_every_expert() {
        // K_persist = 1 persists one expert per layer per checkpoint, as a
        // subset of the snapshot selection; after a full rotation every
        // expert must have a post-bootstrap version in persistent storage.
        let config = RuntimeConfig {
            total_iterations: 36,
            i_ckpt: 2,
            k_snapshot: 2,
            k_persist: 1,
            eval_every: 0,
            ..quick_config()
        };
        let store = Arc::new(MemoryObjectStore::new());
        Coordinator::new(config.clone(), store.clone())
            .unwrap()
            .run()
            .unwrap();
        let layers: Vec<usize> = config.model.moe_layer_indices().to_vec();
        for layer in layers {
            for expert in 0..config.model.num_experts() {
                let module = format!("layer{layer}.expert{expert}");
                let latest = store
                    .latest_version(&module, moc_store::StatePart::Weights, u64::MAX)
                    .unwrap()
                    .unwrap_or(0);
                assert!(
                    latest > 0,
                    "{module} never persisted past bootstrap (latest {latest})"
                );
            }
        }
    }

    #[test]
    fn two_level_recovery_uses_surviving_memory() {
        let config = RuntimeConfig {
            faults: FaultPlan::At(vec![FaultEvent {
                iteration: 6,
                node: 0,
            }]),
            heartbeat_timeout: std::time::Duration::from_millis(500),
            two_level: true,
            ..quick_config()
        };
        let summary = run(config);
        assert!(
            summary.memory_hits > 0,
            "healthy node snapshots must serve recovery: {summary:?}"
        );
        assert!(
            summary.storage_hits > 0,
            "dead node slots come from storage"
        );
    }
}
