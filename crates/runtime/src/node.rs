//! Per-node runtime state: CPU-memory tier handle and checkpoint engine.
//!
//! A [`NodeRuntime`] bundles what one physical node owns in the live
//! runtime: its slice of the cluster's CPU-memory tier and the
//! asynchronous checkpoint engine ([`moc_ckpt::CkptEngine`]) whose
//! snapshot → shard → persist pipeline serves all ranks hosted on the
//! node. Each node writes its own manifest chain (chain id = node id), so
//! a kill between shard writes can only lose the node's uncommitted tail
//! — never a committed checkpoint.

use moc_ckpt::{CkptEngine, EngineConfig, EngineStats};
use moc_core::twolevel::ShardJob;
use moc_obs::TraceSink;
use moc_store::{NodeId, NodeMemoryStore, ObjectStore};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Live state of one node.
pub struct NodeRuntime {
    id: NodeId,
    memory: Arc<NodeMemoryStore>,
    engine: Option<CkptEngine>,
    alive: bool,
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.id)
            .field("alive", &self.alive)
            .finish()
    }
}

impl NodeRuntime {
    /// Spawns the node's checkpoint engine over its memory store and the
    /// shared persistent store. `sink` traces the engine's background
    /// writer thread (pass [`TraceSink::disabled`] when observability is
    /// off).
    pub fn spawn(
        id: NodeId,
        memory: Arc<NodeMemoryStore>,
        store: Arc<dyn ObjectStore>,
        config: EngineConfig,
        sink: TraceSink,
    ) -> Self {
        let engine = CkptEngine::spawn_observed(id.0, Some(memory.clone()), store, config, sink);
        Self {
            id,
            memory,
            engine: Some(engine),
            alive: true,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's CPU-memory snapshot store.
    pub fn memory(&self) -> &Arc<NodeMemoryStore> {
        &self.memory
    }

    /// Whether the node is currently healthy.
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Marks the node dead (after fault detection) or alive (after
    /// restart).
    pub fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    /// Submits an asynchronous checkpoint batch to the node's engine.
    /// Returns whether the submission stalled waiting for the in-flight
    /// limit. Performs no store I/O on the calling thread.
    pub fn submit(&self, version: u64, shards: Vec<ShardJob>) -> bool {
        self.engine
            .as_ref()
            .expect("engine alive")
            .submit(version, shards)
    }

    /// A shared handle on the engine writer's cumulative persisted
    /// bytes, for live telemetry sampling.
    pub fn persisted_bytes_probe(&self) -> Arc<AtomicU64> {
        self.engine
            .as_ref()
            .expect("engine alive")
            .persisted_bytes_probe()
    }

    /// Blocks until the node's engine drained its persist pipeline.
    pub fn wait_idle(&self) {
        if let Some(engine) = &self.engine {
            engine.wait_idle();
        }
    }

    /// Shuts the engine down, returning its work counters.
    pub fn shutdown(&mut self) -> EngineStats {
        self.engine
            .take()
            .map(CkptEngine::shutdown)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use moc_ckpt::ChainStore;
    use moc_store::{MemoryObjectStore, ShardKey, StatePart};

    #[test]
    fn submit_lands_in_both_tiers_with_manifest() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut node = NodeRuntime::spawn(
            NodeId(0),
            memory.clone(),
            store.clone(),
            EngineConfig::default(),
            TraceSink::disabled(),
        );
        let shards = vec![ShardJob {
            key: ShardKey::new("m", StatePart::Weights, 3),
            payload: Bytes::from_static(b"payload"),
            persist: true,
        }];
        let stalled = node.submit(3, shards);
        node.wait_idle();
        assert!(!stalled);
        assert_eq!(memory.version("m", StatePart::Weights), Some(3));
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), Some(3));
        let stats = node.shutdown();
        assert_eq!(stats.writer.checkpoints, 1);
        assert_eq!(stats.snapshots, 1);
    }

    #[test]
    fn alive_flag_toggles() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut node = NodeRuntime::spawn(
            NodeId(1),
            memory,
            store,
            EngineConfig::default(),
            TraceSink::disabled(),
        );
        assert!(node.alive());
        node.set_alive(false);
        assert!(!node.alive());
        node.shutdown();
    }
}
