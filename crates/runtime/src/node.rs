//! Per-node runtime state: CPU-memory tier handle and checkpoint agent.
//!
//! A [`NodeRuntime`] bundles what one physical node owns in the live
//! runtime: its slice of the cluster's CPU-memory tier and the
//! asynchronous two-level checkpoint agent (`moc_core::twolevel`) whose
//! snapshot/persist workers serve all ranks hosted on the node.

use moc_core::twolevel::{AgentStats, CheckpointJob, NodeAgent, ShardJob};
use moc_store::{NodeId, NodeMemoryStore, ObjectStore};
use std::sync::Arc;

/// Live state of one node.
pub struct NodeRuntime {
    id: NodeId,
    memory: Arc<NodeMemoryStore>,
    agent: Option<NodeAgent>,
    alive: bool,
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("id", &self.id)
            .field("alive", &self.alive)
            .finish()
    }
}

impl NodeRuntime {
    /// Spawns the node's checkpoint agent over its memory store and the
    /// shared persistent store.
    pub fn spawn(id: NodeId, memory: Arc<NodeMemoryStore>, store: Arc<dyn ObjectStore>) -> Self {
        let agent = NodeAgent::spawn(id, memory.clone(), store);
        Self {
            id,
            memory,
            agent: Some(agent),
            alive: true,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's CPU-memory snapshot store.
    pub fn memory(&self) -> &Arc<NodeMemoryStore> {
        &self.memory
    }

    /// Whether the node is currently healthy.
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Marks the node dead (after fault detection) or alive (after
    /// restart).
    pub fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    /// Submits an asynchronous checkpoint job to the node's agent.
    /// Returns whether the submission stalled waiting for a free buffer.
    pub fn submit(&self, version: u64, shards: Vec<ShardJob>) -> bool {
        self.agent
            .as_ref()
            .expect("agent alive")
            .submit(CheckpointJob { version, shards })
            .expect("agent accepts jobs")
    }

    /// Blocks until the node's agent drained its snapshot and persist
    /// queues.
    pub fn wait_idle(&self) {
        if let Some(agent) = &self.agent {
            agent.wait_idle();
        }
    }

    /// Shuts the agent down, returning its work counters.
    pub fn shutdown(&mut self) -> AgentStats {
        self.agent
            .take()
            .map(NodeAgent::shutdown)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use moc_store::{MemoryObjectStore, ShardKey, StatePart};

    #[test]
    fn submit_lands_in_both_tiers() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut node = NodeRuntime::spawn(NodeId(0), memory.clone(), store.clone());
        let shards = vec![ShardJob {
            key: ShardKey::new("m", StatePart::Weights, 3),
            payload: Bytes::from_static(b"payload"),
            persist: true,
        }];
        let stalled = node.submit(3, shards);
        node.wait_idle();
        assert!(!stalled);
        assert_eq!(memory.version("m", StatePart::Weights), Some(3));
        assert_eq!(store.keys().unwrap().len(), 1);
        let stats = node.shutdown();
        assert_eq!(stats.snapshots_done, 1);
    }

    #[test]
    fn alive_flag_toggles() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut node = NodeRuntime::spawn(NodeId(1), memory, store);
        assert!(node.alive());
        node.set_alive(false);
        assert!(!node.alive());
        node.shutdown();
    }
}
