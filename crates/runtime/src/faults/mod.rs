//! FaultPlan v2 — the unified chaos plane.
//!
//! The seed's fault model was clean-room: nodes die atomically
//! ([`moc_store::FaultPlan`]), stragglers slow down
//! ([`crate::SlowEvent`]), and every store operation succeeds or the
//! run is over. Real clusters mostly see *gray* failures — dropped
//! heartbeats, flaky I/O, delayed or dropped messages, nodes that flap.
//! This module unifies all of them into one seeded, deterministic,
//! composable schedule:
//!
//! * [`FaultKind::Kill`] — fail-stop node death (the v1 kind);
//! * [`FaultKind::Flap`] — node death that later rejoins through the
//!   elastic expand path (requires [`crate::ElasticConfig`] shrink mode
//!   with a rejoin horizon);
//! * [`FaultKind::Straggler`] — the v1 slow-rank profile;
//! * [`FaultKind::HeartbeatLoss`] — a gray control-plane failure: the
//!   rank computes and exchanges gradients normally but its step report
//!   reaches the coordinator late, after one or more detector windows.
//!   Under the suspicion detector ([`DetectorConfig`]) the rank is
//!   suspected and then re-admitted with **zero** recoveries triggered;
//! * [`FaultKind::MeshDelay`] / [`FaultKind::MeshDrop`] — mesh-channel
//!   congestion or message loss: the rank enters its collectives late
//!   (or not at all); a delay past the peer deadline or a drop makes
//!   the collective abort and the run roll back — without declaring
//!   anyone dead;
//! * [`ChaosPlan::store`] — transient or permanent `ObjectStore`
//!   outages ([`moc_store::StoreFaultPlan`]), injected by wrapping the
//!   run's store in a [`moc_store::ChaosStore`] and absorbed by the
//!   [`moc_store::RetryStore`] layered on top of it.
//!
//! All injection is idempotent on rollback re-execution: like v1 kills,
//! every scheduled event fires exactly once even when its iteration is
//! re-run after a recovery.
//!
//! [`generator::generate_schedule`] draws randomized mixed-fault
//! schedules from a seed for the chaos soak harness
//! (`tests/chaos_live.rs`), and [`detector`] holds the suspicion state
//! machine the coordinator and the `fig20_detection_tradeoff` bench
//! share.

pub mod detector;
pub mod generator;

pub use detector::{DetectorConfig, SuspicionSim, SuspicionVerdict};
pub use generator::{generate_schedule, ChaosProfile};

use crate::config::ConfigError;
use crate::injector::SlowEvent;
use moc_store::{FaultEvent, StoreFaultPlan};

/// One composable fault kind of FaultPlan v2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: `node` dies mid-iteration and never returns by itself
    /// (the fixed-shape respawn path revives its ranks; elastic shrink
    /// retires them).
    Kill {
        /// The node that dies.
        node: usize,
    },
    /// Flap: `node` dies and later rejoins through the elastic expand
    /// path. Requires `elastic.shrink` with a `rejoin_after` horizon —
    /// [`ChaosPlan::validate`] rejects the plan otherwise.
    Flap {
        /// The node that dies and rejoins.
        node: usize,
    },
    /// The v1 slow-rank degradation profile.
    Straggler {
        /// Rank slowed down.
        rank: usize,
        /// Consecutive iterations the slowdown lasts (`>= 1`).
        duration: u64,
        /// Step-duration multiplier (`>= 1.0`).
        factor: f64,
    },
    /// Gray failure of the control plane only: the rank's step report is
    /// delayed past `misses` detector windows while its data-plane
    /// collectives complete normally. `misses` must stay below the
    /// detector's `k_misses` for the rank to be re-admitted.
    HeartbeatLoss {
        /// The silent rank.
        rank: usize,
        /// Collect windows the report misses (`>= 1`).
        misses: u32,
    },
    /// Mesh congestion: the rank enters this iteration's collectives
    /// late by `window_fraction` of a heartbeat window. Below 1.0 the
    /// collective completes slowly; at or above 1.0 peers time out,
    /// abort, and the run rolls back (no one is declared dead).
    MeshDelay {
        /// The delayed rank.
        rank: usize,
        /// Delay as a fraction of the heartbeat window (`> 0`, finite).
        window_fraction: f64,
    },
    /// Mesh partition: every collective message of the rank is dropped
    /// this iteration. The rank aborts the step; its peers time out and
    /// abort; the coordinator rolls back without declaring deaths.
    MeshDrop {
        /// The partitioned rank.
        rank: usize,
    },
}

/// One scheduled chaos event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEvent {
    /// Iteration the fault strikes (shifted to 1 if scheduled earlier).
    pub iteration: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// Mesh chaos directives merged per `(iteration, rank)` by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeshChaos {
    /// Collective-entry delay as a fraction of the heartbeat window
    /// (0 = none).
    pub window_fraction: f64,
    /// Whether the rank's collective messages are dropped entirely.
    pub drop: bool,
}

/// FaultPlan v2: a unified, seeded, deterministic schedule of
/// composable fault kinds, plus a store-outage schedule in
/// operation-index space.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// Iteration-scheduled fault events.
    pub events: Vec<ChaosEvent>,
    /// Store outages (operation-indexed; see [`moc_store::ChaosStore`]).
    pub store: StoreFaultPlan,
}

impl ChaosPlan {
    /// An empty plan (the default: no chaos).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.store.is_empty()
    }

    /// The node-kill events (kills and flaps) in v1 form, for the
    /// injector's kill map.
    pub fn kills(&self) -> Vec<FaultEvent> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Kill { node } | FaultKind::Flap { node } => Some(FaultEvent {
                    iteration: e.iteration,
                    node,
                }),
                _ => None,
            })
            .collect()
    }

    /// The straggler events in v1 form, for the injector's slow map.
    pub fn stragglers(&self) -> Vec<SlowEvent> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Straggler {
                    rank,
                    duration,
                    factor,
                } => Some(SlowEvent::sustained(rank, e.iteration, duration, factor)),
                _ => None,
            })
            .collect()
    }

    /// `(iteration, rank, misses)` heartbeat-loss triples.
    pub fn heartbeat_losses(&self) -> Vec<(u64, usize, u32)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::HeartbeatLoss { rank, misses } => {
                    Some((e.iteration.max(1), rank, misses))
                }
                _ => None,
            })
            .collect()
    }

    /// `(iteration, rank, chaos)` mesh directives, merged per rank per
    /// iteration (drop wins over delay; overlapping delays keep the
    /// worst fraction).
    pub fn mesh_events(&self) -> Vec<(u64, usize, MeshChaos)> {
        let mut merged: Vec<(u64, usize, MeshChaos)> = Vec::new();
        for e in &self.events {
            let (rank, chaos) = match e.kind {
                FaultKind::MeshDelay {
                    rank,
                    window_fraction,
                } => (
                    rank,
                    MeshChaos {
                        window_fraction,
                        drop: false,
                    },
                ),
                FaultKind::MeshDrop { rank } => (
                    rank,
                    MeshChaos {
                        window_fraction: 0.0,
                        drop: true,
                    },
                ),
                _ => continue,
            };
            let it = e.iteration.max(1);
            match merged.iter_mut().find(|(i, r, _)| *i == it && *r == rank) {
                Some((_, _, m)) => {
                    m.drop |= chaos.drop;
                    m.window_fraction = m.window_fraction.max(chaos.window_fraction);
                }
                None => merged.push((it, rank, chaos)),
            }
        }
        merged
    }

    /// Whether the plan contains a flap (die-then-rejoin) event.
    pub fn has_flap(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Flap { .. }))
    }

    /// Checks every event against the cluster shape and the detector.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError::BadChaosEvent`] found: an
    /// out-of-range node or rank, a heartbeat loss of zero windows or
    /// one the detector would declare dead (`misses >= k_misses`), a
    /// non-positive or non-finite mesh delay, or a non-positive
    /// straggler profile.
    pub fn validate(
        &self,
        num_nodes: usize,
        world: usize,
        detector: &DetectorConfig,
    ) -> Result<(), ConfigError> {
        let bad = |reason: String| Err(ConfigError::BadChaosEvent { reason });
        for e in &self.events {
            match e.kind {
                FaultKind::Kill { node } | FaultKind::Flap { node } => {
                    if node >= num_nodes {
                        return bad(format!("node {node} outside cluster of {num_nodes}"));
                    }
                }
                FaultKind::Straggler {
                    rank,
                    duration,
                    factor,
                } => {
                    if rank >= world || !factor.is_finite() || factor < 1.0 || duration == 0 {
                        return bad(format!(
                            "straggler rank {rank} / factor {factor} / duration {duration}"
                        ));
                    }
                }
                FaultKind::HeartbeatLoss { rank, misses } => {
                    if rank >= world {
                        return bad(format!("heartbeat-loss rank {rank} outside world {world}"));
                    }
                    if misses == 0 {
                        return bad("heartbeat loss of zero windows".into());
                    }
                    if misses >= detector.k_misses {
                        return bad(format!(
                            "heartbeat loss of {misses} windows meets the detector's \
                             k_misses = {} and would be declared dead; schedule a kill \
                             instead",
                            detector.k_misses
                        ));
                    }
                }
                FaultKind::MeshDelay {
                    rank,
                    window_fraction,
                } => {
                    if rank >= world {
                        return bad(format!("mesh-delay rank {rank} outside world {world}"));
                    }
                    if !window_fraction.is_finite() || window_fraction <= 0.0 {
                        return bad(format!("mesh-delay fraction {window_fraction}"));
                    }
                }
                FaultKind::MeshDrop { rank } => {
                    if rank >= world {
                        return bad(format!("mesh-drop rank {rank} outside world {world}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(k: u32) -> DetectorConfig {
        DetectorConfig {
            k_misses: k,
            lease: None,
        }
    }

    #[test]
    fn lowering_splits_kinds() {
        let plan = ChaosPlan {
            events: vec![
                ChaosEvent {
                    iteration: 3,
                    kind: FaultKind::Kill { node: 1 },
                },
                ChaosEvent {
                    iteration: 5,
                    kind: FaultKind::Flap { node: 0 },
                },
                ChaosEvent {
                    iteration: 4,
                    kind: FaultKind::Straggler {
                        rank: 2,
                        duration: 2,
                        factor: 3.0,
                    },
                },
                ChaosEvent {
                    iteration: 6,
                    kind: FaultKind::HeartbeatLoss { rank: 1, misses: 1 },
                },
                ChaosEvent {
                    iteration: 7,
                    kind: FaultKind::MeshDelay {
                        rank: 3,
                        window_fraction: 0.5,
                    },
                },
                ChaosEvent {
                    iteration: 7,
                    kind: FaultKind::MeshDrop { rank: 3 },
                },
            ],
            store: StoreFaultPlan::none(),
        };
        assert_eq!(plan.kills().len(), 2);
        assert_eq!(plan.stragglers().len(), 1);
        assert_eq!(plan.heartbeat_losses(), vec![(6, 1, 1)]);
        let mesh = plan.mesh_events();
        assert_eq!(mesh.len(), 1, "delay and drop on one rank merge");
        assert!(mesh[0].2.drop);
        assert_eq!(mesh[0].2.window_fraction, 0.5);
        assert!(plan.has_flap());
        assert!(plan.validate(2, 4, &det(2)).is_ok());
    }

    #[test]
    fn validate_rejects_declared_dead_heartbeat_loss() {
        let plan = ChaosPlan {
            events: vec![ChaosEvent {
                iteration: 2,
                kind: FaultKind::HeartbeatLoss { rank: 0, misses: 2 },
            }],
            store: StoreFaultPlan::none(),
        };
        assert!(plan.validate(2, 4, &det(3)).is_ok());
        assert!(matches!(
            plan.validate(2, 4, &det(2)),
            Err(ConfigError::BadChaosEvent { .. })
        ));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let kill = ChaosPlan {
            events: vec![ChaosEvent {
                iteration: 1,
                kind: FaultKind::Kill { node: 9 },
            }],
            store: StoreFaultPlan::none(),
        };
        assert!(kill.validate(2, 4, &det(2)).is_err());
        let mesh = ChaosPlan {
            events: vec![ChaosEvent {
                iteration: 1,
                kind: FaultKind::MeshDrop { rank: 99 },
            }],
            store: StoreFaultPlan::none(),
        };
        assert!(mesh.validate(2, 4, &det(2)).is_err());
    }
}
