//! Suspicion-based failure detection.
//!
//! The seed's coordinator declared a rank dead on the *first* missed
//! heartbeat window — any gray failure (a delayed report, a congested
//! control path) triggered a full recovery. [`DetectorConfig`] replaces
//! that with a K-missed-heartbeats detector: after the base collect
//! window times out, the coordinator grants the silent ranks up to
//! `k_misses - 1` additional *lease* windows, marking them **suspected**
//! (with a flight-recorder dump, per the chaos-plane contract) rather
//! than dead. A suspected rank whose reply arrives inside a lease is
//! re-admitted — suspicion cleared, zero recoveries run. Only after
//! `k_misses` consecutive silent windows is the rank declared dead and
//! the recovery path entered.
//!
//! [`SuspicionSim`] is the same state machine in pure form, used by the
//! `fig20_detection_tradeoff` bench to sweep the detection-latency /
//! false-positive trade-off without spinning up live runs.

use std::time::Duration;

/// K-missed-heartbeats detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Consecutive missed windows before a silent rank is declared dead
    /// (`>= 1`; `1` reproduces the legacy single-miss detector exactly —
    /// no suspicion state, first timeout declares).
    pub k_misses: u32,
    /// Length of each post-suspicion grace window. `None` reuses the
    /// collective's base collect window.
    pub lease: Option<Duration>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            k_misses: 2,
            lease: None,
        }
    }
}

impl DetectorConfig {
    /// The legacy single-miss detector.
    pub fn legacy() -> Self {
        Self {
            k_misses: 1,
            lease: None,
        }
    }

    /// The grace window granted per additional miss, given the
    /// collective's base collect `window`.
    pub fn lease_for(&self, window: Duration) -> Duration {
        self.lease.unwrap_or(window)
    }

    /// Worst-case time from a rank's true death to its declaration:
    /// the base window plus `k_misses - 1` leases.
    pub fn declare_after(&self, window: Duration) -> Duration {
        window + self.lease_for(window) * self.k_misses.saturating_sub(1)
    }

    /// The effective miss threshold for a rank the health plane already
    /// scored as degraded: silence then corroborates an existing signal
    /// instead of opening a fresh suspicion, so the rank gets one lease
    /// window fewer before declaration (never below the legacy single
    /// miss).
    pub fn corroborated_k(&self) -> u32 {
        self.k_misses.saturating_sub(1).max(1)
    }

    /// [`Self::declare_after`] under corroboration: exactly one lease
    /// window shorter (down to the legacy bound).
    pub fn declare_after_corroborated(&self, window: Duration) -> Duration {
        window + self.lease_for(window) * self.corroborated_k().saturating_sub(1)
    }
}

/// Verdict of one observed window in the pure detector model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspicionVerdict {
    /// The rank replied; any suspicion is cleared.
    Healthy,
    /// The rank has missed this many consecutive windows (`< k_misses`).
    Suspected(u32),
    /// The rank has missed `k_misses` consecutive windows and is
    /// declared dead.
    Declared,
}

/// Pure per-rank suspicion state machine — the detector logic the live
/// collect loops implement, extracted for simulation and benches.
#[derive(Debug, Clone, Copy)]
pub struct SuspicionSim {
    k: u32,
    misses: u32,
}

impl SuspicionSim {
    /// A fresh (healthy) rank under a detector declaring after
    /// `k_misses` consecutive misses.
    ///
    /// # Panics
    ///
    /// Panics if `k_misses` is zero.
    pub fn new(k_misses: u32) -> Self {
        assert!(k_misses >= 1, "a detector must allow at least one miss");
        Self {
            k: k_misses,
            misses: 0,
        }
    }

    /// Observes one window and returns the verdict.
    pub fn observe(&mut self, heartbeat_arrived: bool) -> SuspicionVerdict {
        if heartbeat_arrived {
            self.misses = 0;
            return SuspicionVerdict::Healthy;
        }
        self.misses += 1;
        if self.misses >= self.k {
            SuspicionVerdict::Declared
        } else {
            SuspicionVerdict::Suspected(self.misses)
        }
    }

    /// Consecutive misses currently on record.
    pub fn misses(&self) -> u32 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_declares_on_first_miss() {
        let mut sim = SuspicionSim::new(1);
        assert_eq!(sim.observe(true), SuspicionVerdict::Healthy);
        assert_eq!(sim.observe(false), SuspicionVerdict::Declared);
    }

    #[test]
    fn reply_inside_lease_clears_suspicion() {
        let mut sim = SuspicionSim::new(3);
        assert_eq!(sim.observe(false), SuspicionVerdict::Suspected(1));
        assert_eq!(sim.observe(false), SuspicionVerdict::Suspected(2));
        assert_eq!(sim.observe(true), SuspicionVerdict::Healthy);
        assert_eq!(sim.misses(), 0);
        // The counter reset: it takes three fresh misses to declare.
        assert_eq!(sim.observe(false), SuspicionVerdict::Suspected(1));
        assert_eq!(sim.observe(false), SuspicionVerdict::Suspected(2));
        assert_eq!(sim.observe(false), SuspicionVerdict::Declared);
    }

    #[test]
    fn declare_after_bounds_detection_latency() {
        let w = Duration::from_millis(100);
        let legacy = DetectorConfig::legacy();
        assert_eq!(legacy.declare_after(w), w);
        let d = DetectorConfig {
            k_misses: 3,
            lease: None,
        };
        assert_eq!(d.declare_after(w), Duration::from_millis(300));
        let custom = DetectorConfig {
            k_misses: 3,
            lease: Some(Duration::from_millis(10)),
        };
        assert_eq!(custom.declare_after(w), Duration::from_millis(120));
    }

    #[test]
    #[should_panic(expected = "at least one miss")]
    fn zero_k_panics() {
        SuspicionSim::new(0);
    }

    #[test]
    fn corroboration_shortens_declaration_by_exactly_one_lease() {
        let w = Duration::from_millis(100);
        let d = DetectorConfig {
            k_misses: 3,
            lease: Some(Duration::from_millis(40)),
        };
        assert_eq!(d.corroborated_k(), 2);
        assert_eq!(
            d.declare_after(w) - d.declare_after_corroborated(w),
            d.lease_for(w),
        );
        // The default detector (k = 2) drops to the legacy bound.
        let default = DetectorConfig::default();
        assert_eq!(default.corroborated_k(), 1);
        assert_eq!(default.declare_after_corroborated(w), w);
        // Legacy cannot get any faster: corroboration floors at one miss.
        let legacy = DetectorConfig::legacy();
        assert_eq!(legacy.corroborated_k(), 1);
        assert_eq!(
            legacy.declare_after_corroborated(w),
            legacy.declare_after(w)
        );
    }
}
