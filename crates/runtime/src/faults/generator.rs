//! Seeded chaos-schedule generation for the soak harness.
//!
//! [`generate_schedule`] draws a randomized mixed-fault [`ChaosPlan`]
//! from a seed — same seed, same plan — so `tests/chaos_live.rs` can
//! sweep hundreds of schedules reproducibly and any failure is
//! re-runnable from its seed alone.
//!
//! The generator is deliberately bounded: at most one kill-or-flap per
//! schedule (keeping a quorum of survivors and the soak wall-clock sane)
//! and a handful of gray events, every one of them within the envelope
//! the runtime guarantees it tolerates — heartbeat losses stay below the
//! detector's `k_misses`, store outage windows stay within the retry
//! budget. Exceeding those envelopes is legitimate chaos too, but it is
//! exercised by targeted tests with typed-error expectations, not the
//! bitwise-identical soak.

use super::{ChaosEvent, ChaosPlan, FaultKind};
use moc_store::{OutagePath, StoreFaultPlan, StoreOutage};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which fault kinds a generated schedule may contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Allow fail-stop node kills.
    pub kills: bool,
    /// Allow die-then-rejoin flaps (requires an elastic config).
    pub flaps: bool,
    /// Allow slow-rank stragglers.
    pub stragglers: bool,
    /// Allow gray heartbeat losses (requires `k_misses >= 2`).
    pub heartbeat_loss: bool,
    /// Allow mesh-channel delays and drops.
    pub mesh: bool,
    /// Allow transient store outages.
    pub store: bool,
}

impl ChaosProfile {
    /// Every fault kind enabled.
    pub fn all() -> Self {
        Self {
            kills: true,
            flaps: true,
            stragglers: true,
            heartbeat_loss: true,
            mesh: true,
            store: true,
        }
    }

    /// Gray control-plane failures only — the zero-false-positive pin.
    pub fn heartbeat_only() -> Self {
        Self {
            kills: false,
            flaps: false,
            stragglers: false,
            heartbeat_loss: true,
            mesh: false,
            store: false,
        }
    }

    /// Transient store faults only — the zero-lost-checkpoint pin.
    pub fn store_only() -> Self {
        Self {
            kills: false,
            flaps: false,
            stragglers: false,
            heartbeat_loss: false,
            mesh: false,
            store: true,
        }
    }

    /// Everything except node deaths — pure gray chaos.
    pub fn gray_only() -> Self {
        Self {
            kills: false,
            flaps: false,
            ..Self::all()
        }
    }
}

/// Draws a deterministic mixed-fault schedule from `seed` for a run of
/// `horizon` iterations on `num_nodes` nodes with `world` ranks, under a
/// detector declaring after `k_misses` windows.
///
/// Structural bounds: at most one kill-or-flap, up to three gray events,
/// at most one transient store window (1–3 consecutive failures —
/// within the default 4-attempt retry budget). Heartbeat losses miss
/// `1..k_misses` windows, so they are always re-admitted. Mesh drops and
/// super-window delays ride the collective-abort rollback path.
pub fn generate_schedule(
    seed: u64,
    horizon: u64,
    num_nodes: usize,
    world: usize,
    k_misses: u32,
    profile: ChaosProfile,
) -> ChaosPlan {
    assert!(horizon >= 2, "a chaos schedule needs at least 2 iterations");
    assert!(num_nodes >= 2 && world >= 2, "chaos needs a real cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let iter = |rng: &mut StdRng| rng.random_range(1..=horizon);

    // At most one node death per schedule, flap preferred when allowed.
    if (profile.kills || profile.flaps) && rng.random::<f64>() < 0.55 {
        let node = rng.random_range(0..num_nodes);
        // Kill early enough that a flap's rejoin can land in-horizon.
        let iteration = rng.random_range(1..=horizon.max(3) - 1);
        let kind = if profile.flaps && (!profile.kills || rng.random::<f64>() < 0.5) {
            FaultKind::Flap { node }
        } else {
            FaultKind::Kill { node }
        };
        events.push(ChaosEvent { iteration, kind });
    }

    if profile.stragglers && rng.random::<f64>() < 0.5 {
        events.push(ChaosEvent {
            iteration: iter(&mut rng),
            kind: FaultKind::Straggler {
                rank: rng.random_range(0..world),
                duration: rng.random_range(1..=2u64),
                factor: 1.5 + rng.random::<f64>() * 2.0,
            },
        });
    }

    if profile.heartbeat_loss && k_misses >= 2 {
        let n = rng.random_range(1..=2u32);
        for _ in 0..n {
            events.push(ChaosEvent {
                iteration: iter(&mut rng),
                kind: FaultKind::HeartbeatLoss {
                    rank: rng.random_range(0..world),
                    misses: rng.random_range(1..k_misses),
                },
            });
        }
    }

    if profile.mesh && rng.random::<f64>() < 0.6 {
        let rank = rng.random_range(0..world);
        let iteration = iter(&mut rng);
        let kind = if rng.random::<f64>() < 0.4 {
            FaultKind::MeshDrop { rank }
        } else {
            FaultKind::MeshDelay {
                rank,
                window_fraction: 0.25 + rng.random::<f64>() * 0.35,
            }
        };
        events.push(ChaosEvent { iteration, kind });
    }

    let store = if profile.store && rng.random::<f64>() < 0.7 {
        StoreFaultPlan {
            outages: vec![StoreOutage {
                path: match rng.random_range(0..3u32) {
                    0 => OutagePath::Reads,
                    1 => OutagePath::Writes,
                    _ => OutagePath::Both,
                },
                start_op: rng.random_range(0..horizon * world as u64),
                failures: rng.random_range(1..=3u64),
            }],
        }
    } else {
        StoreFaultPlan::none()
    };

    ChaosPlan { events, store }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DetectorConfig;

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..50u64 {
            let a = generate_schedule(seed, 8, 2, 4, 2, ChaosProfile::all());
            let b = generate_schedule(seed, 8, 2, 4, 2, ChaosProfile::all());
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn schedules_stay_within_the_tolerated_envelope() {
        let det = DetectorConfig {
            k_misses: 2,
            lease: None,
        };
        for seed in 0..200u64 {
            let plan = generate_schedule(seed, 8, 2, 4, det.k_misses, ChaosProfile::all());
            plan.validate(2, 4, &det)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(plan.kills().len() <= 1, "seed {seed}: at most one death");
            assert!(
                plan.store.max_consecutive_failures() <= 3,
                "seed {seed}: store window fits the retry budget"
            );
        }
    }

    #[test]
    fn heartbeat_only_schedules_contain_only_heartbeat_loss() {
        for seed in 0..100u64 {
            let plan = generate_schedule(seed, 8, 2, 4, 3, ChaosProfile::heartbeat_only());
            assert!(plan.store.is_empty(), "seed {seed}");
            for e in &plan.events {
                assert!(
                    matches!(e.kind, FaultKind::HeartbeatLoss { .. }),
                    "seed {seed}: {e:?}"
                );
            }
            assert!(!plan.events.is_empty(), "seed {seed}: never empty");
        }
    }

    #[test]
    fn heartbeat_loss_needs_a_suspicion_detector() {
        // Under the legacy single-miss detector no re-admittable loss
        // exists, so none are generated.
        let plan = generate_schedule(7, 8, 2, 4, 1, ChaosProfile::heartbeat_only());
        assert!(plan.events.is_empty());
    }

    #[test]
    fn seeds_cover_every_kind() {
        let mut kills = 0;
        let mut flaps = 0;
        let mut stragglers = 0;
        let mut losses = 0;
        let mut delays = 0;
        let mut drops = 0;
        let mut stores = 0;
        for seed in 0..300u64 {
            let plan = generate_schedule(seed, 8, 2, 4, 2, ChaosProfile::all());
            if !plan.store.is_empty() {
                stores += 1;
            }
            for e in &plan.events {
                match e.kind {
                    FaultKind::Kill { .. } => kills += 1,
                    FaultKind::Flap { .. } => flaps += 1,
                    FaultKind::Straggler { .. } => stragglers += 1,
                    FaultKind::HeartbeatLoss { .. } => losses += 1,
                    FaultKind::MeshDelay { .. } => delays += 1,
                    FaultKind::MeshDrop { .. } => drops += 1,
                }
            }
        }
        for (name, n) in [
            ("kills", kills),
            ("flaps", flaps),
            ("stragglers", stragglers),
            ("heartbeat losses", losses),
            ("mesh delays", delays),
            ("mesh drops", drops),
            ("store outages", stores),
        ] {
            assert!(n > 10, "{name} barely generated: {n}");
        }
    }
}
