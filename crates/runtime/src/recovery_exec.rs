//! Live execution of a two-level recovery plan.
//!
//! After the coordinator detects dead nodes it calls
//! [`execute_recovery`]: plan which source (healthy nodes' CPU memory or
//! persistent storage) holds the freshest restorable version of every
//! module slot, fetch the payloads, and package them as restore blobs the
//! coordinator broadcasts to every rank. Timing of the plan and fetch
//! stages is measured so live recoveries can be compared with the
//! analytic models.

use crate::rank::RestoreBlob;
use moc_core::recovery::{
    fetch_action, plan_recovery, RecoveryError, RecoveryPlan, RecoverySource,
};
use moc_store::{ClusterMemory, ObjectStore, StatePart};
use std::time::Instant;

/// Result of planning and fetching a recovery.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The executed plan.
    pub plan: RecoveryPlan,
    /// Restored payloads, one per slot, in plan order.
    pub(crate) blobs: Vec<RestoreBlob>,
    /// Shards served from healthy nodes' CPU memory.
    pub memory_hits: usize,
    /// Shards served from persistent storage.
    pub storage_hits: usize,
    /// Total payload bytes fetched.
    pub bytes: u64,
    /// Seconds spent planning.
    pub plan_secs: f64,
    /// Seconds spent fetching payloads.
    pub fetch_secs: f64,
}

/// Plans and fetches recovery of `slots` as of `at_iteration`.
///
/// # Errors
///
/// Returns [`RecoveryError`] if any slot has no recoverable state in any
/// surviving source.
pub fn execute_recovery(
    slots: &[(String, StatePart)],
    memory: &ClusterMemory,
    store: &dyn ObjectStore,
    healthy: &[bool],
    at_iteration: u64,
    two_level: bool,
) -> Result<RecoveryOutcome, RecoveryError> {
    let plan_start = Instant::now();
    let plan = plan_recovery(slots, memory, store, healthy, at_iteration, two_level)?;
    let plan_secs = plan_start.elapsed().as_secs_f64();

    let fetch_start = Instant::now();
    let mut blobs = Vec::with_capacity(plan.actions.len());
    let mut memory_hits = 0;
    let mut storage_hits = 0;
    let mut bytes = 0u64;
    for action in &plan.actions {
        let payload = fetch_action(action, memory, store)?;
        bytes += payload.len() as u64;
        match action.source {
            RecoverySource::Memory { .. } => memory_hits += 1,
            RecoverySource::Storage => storage_hits += 1,
        }
        blobs.push(RestoreBlob {
            module: action.module.clone(),
            part: action.part,
            payload,
        });
    }
    let fetch_secs = fetch_start.elapsed().as_secs_f64();

    Ok(RecoveryOutcome {
        plan,
        blobs,
        memory_hits,
        storage_hits,
        bytes,
        plan_secs,
        fetch_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use moc_store::{MemoryObjectStore, NodeId, ShardKey};

    #[test]
    fn fetches_freshest_sources() {
        let memory = ClusterMemory::new(2);
        let store = MemoryObjectStore::new();
        for module in ["a", "b"] {
            store
                .put(
                    &ShardKey::new(module, StatePart::Weights, 10),
                    Bytes::from_static(b"old"),
                )
                .unwrap();
        }
        memory.node(NodeId(1)).put(
            &ShardKey::new("b", StatePart::Weights, 20),
            Bytes::from_static(b"fresh"),
        );
        let slots = vec![
            ("a".to_string(), StatePart::Weights),
            ("b".to_string(), StatePart::Weights),
        ];
        let outcome = execute_recovery(&slots, &memory, &store, &[false, true], 25, true).unwrap();
        assert_eq!(outcome.plan.resume_iteration, 20);
        assert_eq!(outcome.memory_hits, 1);
        assert_eq!(outcome.storage_hits, 1);
        assert_eq!(outcome.bytes, 3 + 5);
        assert_eq!(outcome.blobs.len(), 2);
        let b = outcome.blobs.iter().find(|x| x.module == "b").unwrap();
        assert_eq!(&b.payload[..], b"fresh");
    }

    #[test]
    fn unrecoverable_slot_errors() {
        let memory = ClusterMemory::new(1);
        let store = MemoryObjectStore::new();
        let slots = vec![("ghost".to_string(), StatePart::Optimizer)];
        let err = execute_recovery(&slots, &memory, &store, &[true], 10, true);
        assert!(matches!(err, Err(RecoveryError::Unrecoverable { .. })));
    }
}
