//! # moc-runtime — a live multi-rank training runtime
//!
//! Where `moc-cluster` *models* checkpoint timelines analytically and
//! `moc-train`'s harness replays faults inside a single-threaded loop,
//! this crate actually runs the scenario the paper is about: a
//! multi-rank hybrid-parallel (DP × TP × PP with EP inside DP) training
//! job in which a node dies mid-iteration and two-level recovery
//! happens live, with wall-clock measurements of every phase. Every
//! global rank of the grid is an OS thread; gradients all-reduce per DP
//! gradient group, TP groups exchange replica-consistency CRCs, PP
//! chains relay stage tokens, and checkpoint duties are owned per shard
//! group ([`owner_coord`]).
//!
//! * [`config`] — [`RuntimeConfig`]: model, topology, PEC policy,
//!   sync/async checkpoint mode, collective choice, fault and straggler
//!   plans, seeds;
//! * [`coordinator`] — the control plane: thread-per-rank membership,
//!   iteration barriers, heartbeat-based failure detection, recovery
//!   orchestration;
//! * [`collective`] — the gradient-exchange layer:
//!   [`CollectiveKind::Ring`] is a decentralized chunked ring all-reduce
//!   run by the rank threads over peer channels
//!   ([`collective::ring_all_reduce`]) with preallocated zero-alloc
//!   chunk buffers ([`collective::ChunkPool`]);
//!   [`CollectiveKind::Star`] is the coordinator gather/sum/broadcast
//!   baseline and the fallback the ring aborts into on a fault;
//! * [`rank`] — rank worker threads owning real [`moc_train::TinyMoeLm`]
//!   replicas, plus the checkpoint-sharding ownership map
//!   ([`owner_rank`]);
//! * [`node`] — per-node CPU-memory tier handle and the asynchronous
//!   checkpoint engine ([`moc_ckpt::CkptEngine`]): copy-on-snapshot into
//!   pooled buffers, delta shards against the last full shard, and a
//!   per-node manifest chain committed strictly after the shards, so
//!   checkpoint iterations perform no blocking store I/O and recovery
//!   (through [`moc_ckpt::ChainStore`]) only ever sees committed state;
//! * [`injector`] — [`FaultInjector`]: materialises a
//!   [`moc_store::FaultPlan`] into mid-iteration node kills and a
//!   [`SlowEvent`] schedule into straggler slowdowns;
//! * [`faults`] — FaultPlan v2 ([`ChaosPlan`]): a unified seeded
//!   schedule adding gray failures — heartbeat loss, mesh-channel
//!   delay/drop, transient store outages, node flaps — plus the
//!   K-missed-heartbeats suspicion detector ([`DetectorConfig`]) and
//!   the chaos-schedule generator behind the soak harness;
//! * [`recovery_exec`] — live execution of two-level recovery plans;
//!   with [`ElasticConfig::shrink`] the coordinator recovers node
//!   deaths *elastically*: surviving shard groups adopt the dead
//!   groups' batch slices and experts under a `moc-elastic` placement
//!   plan, the run continues degraded (bitwise on the fixed-shape
//!   trajectory), and replacement ranks can rejoin later;
//! * [`metrics`] — per-phase wall-clock statistics, run timelines, and
//!   the [`RunSummary::analytic_projection`] hook feeding measured phase
//!   times back into `moc-cluster`'s event simulator.
//!
//! # Determinism
//!
//! Batches, gate noise, expert selection and fault schedules are all pure
//! functions of the configured seed and iteration number (batch slice
//! and gate noise keyed by the *DP coordinate*, so a shard group's
//! members step identically), and gradients are reduced in one fixed
//! combine order — the DP-order left fold `((g₀ + g₁) + g₂) + …` scaled
//! by `1/dp` within each DP gradient group — regardless of which
//! collective runs it and independent of message arrival timing (see
//! [`collective::ring`]). So a run's final parameters are bitwise
//! reproducible, ring and star runs of the same seed are bitwise
//! identical, a `(dp, tp, pp)` grid run is bitwise identical to the
//! `tp = pp = 1` baseline with the same `dp`, and a faulted run under
//! full checkpointing recovers to exactly the state an unfaulted run had
//! at the resume iteration. The coordinator cross-checks every rank's
//! final parameter checksum ([`RunSummary::replicas_consistent`]) and
//! every TP group's per-iteration CRC exchange
//! ([`RunSummary::tp_groups_consistent`]).
//!
//! # Examples
//!
//! ```
//! use moc_runtime::{Coordinator, RuntimeConfig};
//! use moc_core::ParallelTopology;
//! use moc_store::MemoryObjectStore;
//! use std::sync::Arc;
//!
//! let topo = ParallelTopology::dp_ep(2, 2, 4, 4).unwrap();
//! let config = RuntimeConfig {
//!     total_iterations: 8,
//!     i_ckpt: 4,
//!     ..RuntimeConfig::tiny(topo)
//! };
//! let summary = Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(summary.replicas_consistent);
//! ```

#![warn(missing_docs)]

pub mod collective;
pub mod config;
pub mod coordinator;
pub mod faults;
pub mod injector;
pub mod metrics;
pub mod node;
pub(crate) mod rank;
pub mod recovery_exec;
pub mod report;

pub use collective::{
    ChunkPool, CollectiveKind, GroupAbort, GroupEndpoints, GroupMesh, HierMesh, RingAbort,
    RingMesh, RingTimings,
};
pub use config::{CheckpointMode, ConfigError, ElasticConfig, RuntimeConfig};
pub use coordinator::{Coordinator, RuntimeError};
pub use faults::{
    generate_schedule, ChaosEvent, ChaosPlan, ChaosProfile, DetectorConfig, FaultKind, MeshChaos,
    SuspicionSim, SuspicionVerdict,
};
pub use injector::{FaultInjector, SlowEvent};
pub use metrics::{EventKind, MetricsRegistry, Phase, PhaseStats, RunSummary, TimelineEvent};
pub use moc_ckpt::{ChainStore, EngineConfig as CkptEngineConfig, EngineStats as CkptEngineStats};
pub use moc_obs::{ObsConfig, ObsRunReport};
pub use node::NodeRuntime;
pub use rank::{owner_coord, owner_rank};
pub use recovery_exec::{execute_recovery, RecoveryOutcome};
