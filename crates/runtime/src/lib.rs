//! # moc-runtime — a live multi-rank training runtime
//!
//! Where `moc-cluster` *models* checkpoint timelines analytically and
//! `moc-train`'s harness replays faults inside a single-threaded loop,
//! this crate actually runs the scenario the paper is about: a
//! multi-rank data-parallel training job in which a node dies
//! mid-iteration and two-level recovery happens live, with wall-clock
//! measurements of every phase.
//!
//! * [`config`] — [`RuntimeConfig`]: model, topology, PEC policy,
//!   sync/async checkpoint mode, fault plan, seeds;
//! * [`coordinator`] — the control plane: thread-per-rank membership,
//!   gradient-exchange barriers over crossbeam channels, heartbeat-based
//!   failure detection, recovery orchestration;
//! * [`rank`] — rank worker threads owning real [`moc_train::TinyMoeLm`]
//!   replicas, plus the checkpoint-sharding ownership map
//!   ([`owner_rank`]);
//! * [`node`] — per-node CPU-memory tier handle and the asynchronous
//!   two-level checkpoint agent;
//! * [`injector`] — [`FaultInjector`]: materialises a
//!   [`moc_store::FaultPlan`] into mid-iteration node kills;
//! * [`recovery_exec`] — live execution of two-level recovery plans;
//! * [`metrics`] — per-phase wall-clock statistics, run timelines, and
//!   the [`RunSummary::analytic_projection`] hook feeding measured phase
//!   times back into `moc-cluster`'s event simulator.
//!
//! # Determinism
//!
//! Batches, gate noise, expert selection and fault schedules are all pure
//! functions of the configured seed and iteration number, and gradients
//! are reduced in fixed rank order — so a run's final parameters are
//! bitwise reproducible, and a faulted run under full checkpointing
//! recovers to exactly the state an unfaulted run had at the resume
//! iteration. The coordinator cross-checks every rank's final parameter
//! checksum and reports [`RunSummary::replicas_consistent`].
//!
//! # Examples
//!
//! ```
//! use moc_runtime::{Coordinator, RuntimeConfig};
//! use moc_core::ParallelTopology;
//! use moc_store::MemoryObjectStore;
//! use std::sync::Arc;
//!
//! let topo = ParallelTopology::dp_ep(2, 2, 4, 4).unwrap();
//! let config = RuntimeConfig {
//!     total_iterations: 8,
//!     i_ckpt: 4,
//!     ..RuntimeConfig::tiny(topo)
//! };
//! let summary = Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(summary.replicas_consistent);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod coordinator;
pub mod injector;
pub mod metrics;
pub mod node;
pub(crate) mod rank;
pub mod recovery_exec;

pub use config::{CheckpointMode, ConfigError, RuntimeConfig};
pub use coordinator::{Coordinator, RuntimeError};
pub use injector::FaultInjector;
pub use metrics::{EventKind, MetricsRegistry, Phase, PhaseStats, RunSummary, TimelineEvent};
pub use node::NodeRuntime;
pub use rank::owner_rank;
pub use recovery_exec::{execute_recovery, RecoveryOutcome};
