//! Rank worker threads and the coordinator↔rank wire protocol.
//!
//! Each DP rank is an OS thread owning a full replica of the model (the
//! paper's ZeRO-2 DP setting replicates weights; checkpoint *duties* are
//! sharded, not the replicas). Ranks run a lock-step protocol over
//! crossbeam channels — the collective stand-in:
//!
//! 1. `Step`: compute forward+backward on the rank's slice of the global
//!    batch, report the flattened gradient (the all-reduce gather half).
//! 2. `Apply`: load the reduced gradient and take an identical Adam step
//!    (the broadcast half) — replicas stay bitwise identical.
//! 3. `Checkpoint`: serialize the modules this rank *owns* under the
//!    checkpoint-sharding placement and report the shard jobs.
//! 4. `Restore`: overwrite local state from recovery blobs.
//!
//! A `Step` carrying `die: true` makes the thread exit mid-iteration
//! without reporting — the injected node kill. The coordinator only
//! learns of it through the missing reply.

use crate::config::RuntimeConfig;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use moc_core::topology::ParallelTopology;
use moc_core::twolevel::ShardJob;
use moc_moe::{ExpertId, MoeModelConfig};
use moc_store::{ShardKey, StatePart};
use moc_train::checkpoint::{deserialize_module, expert_of, serialize_module};
use moc_train::{adam_step, MarkovCorpus, ParamStore, TinyMoeLm};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// One restored shard broadcast to every rank after recovery.
#[derive(Debug, Clone)]
pub(crate) struct RestoreBlob {
    pub module: String,
    pub part: StatePart,
    pub payload: Bytes,
}

/// Coordinator → rank commands.
#[derive(Debug, Clone)]
pub(crate) enum RankCommand {
    /// Run one training iteration; `die` simulates the node kill.
    Step {
        iteration: u64,
        /// Recovery generation, echoed back so the coordinator can
        /// discard replies from threads that predate a rollback.
        epoch: u64,
        die: bool,
    },
    /// Load the reduced gradient and apply the optimizer step.
    Apply { grad: Arc<Vec<f32>> },
    /// Serialize owned modules for the checkpoint at `iteration`.
    Checkpoint {
        iteration: u64,
        snapshot: Arc<HashSet<ExpertId>>,
        persist: Arc<HashSet<ExpertId>>,
    },
    /// Evaluate validation loss (sent to rank 0 only).
    Eval,
    /// Overwrite local state from recovery blobs.
    Restore { blobs: Arc<Vec<RestoreBlob>> },
    /// Report final parameters and exit.
    Finish,
}

/// Rank → coordinator events.
#[derive(Debug)]
pub(crate) enum RankEvent {
    /// Iteration result: flattened gradient plus routing statistics.
    Grad {
        rank: usize,
        iteration: u64,
        epoch: u64,
        grad: Vec<f32>,
        expert_loads: Vec<Vec<u64>>,
        compute_secs: f64,
    },
    /// Rank 0's acknowledgement that the optimizer step was applied.
    Applied,
    /// Serialized checkpoint shards of the rank's owned modules.
    Shards {
        rank: usize,
        jobs: Vec<ShardJob>,
        serialize_secs: f64,
    },
    /// Validation loss (rank 0).
    EvalLoss { loss: f32 },
    /// Recovery blobs applied.
    Restored { rank: usize },
    /// Final flattened parameters and their checksum.
    Finished {
        rank: usize,
        params: Vec<f32>,
        param_crc: u32,
    },
}

/// Everything a rank thread needs.
pub(crate) struct RankContext {
    pub rank: usize,
    pub config: RuntimeConfig,
    pub commands: Receiver<RankCommand>,
    pub events: Sender<RankEvent>,
}

/// The rank that owns checkpointing a module under the runtime's
/// checkpoint-sharding placement: expert modules live on their EP rank
/// (spread over EP groups by layer), non-expert modules spread over all
/// DP ranks by a deterministic name hash — mirroring
/// `moc_train::TrainingCheckpointer`'s node placement at rank granularity.
pub fn owner_rank(topo: &ParallelTopology, model: &MoeModelConfig, module: &str) -> usize {
    let n = model.num_experts();
    match expert_of(model, module) {
        Some(id) => {
            let ep_rank = topo.expert_ep_rank(id.expert, n);
            let group = id.layer % topo.num_ep_groups();
            group * topo.ep() + ep_rank
        }
        None => {
            let h: usize = module.bytes().map(|b| b as usize).sum();
            h % topo.dp()
        }
    }
}

/// Flattens every parameter gradient in registration order.
pub(crate) fn flatten_grads(store: &ParamStore) -> Vec<f32> {
    store
        .params()
        .iter()
        .flat_map(|p| p.grad.data().iter().copied())
        .collect()
}

/// Loads a flattened gradient back into the store.
pub(crate) fn load_grads(store: &mut ParamStore, grad: &[f32]) {
    let mut offset = 0;
    for p in store.params_mut() {
        let n = p.grad.len();
        p.grad.data_mut().copy_from_slice(&grad[offset..offset + n]);
        offset += n;
    }
    assert_eq!(offset, grad.len(), "gradient length mismatch");
}

/// Flattens every parameter value in registration order.
pub(crate) fn flatten_values(store: &ParamStore) -> Vec<f32> {
    store
        .params()
        .iter()
        .flat_map(|p| p.value.data().iter().copied())
        .collect()
}

/// CRC-32 over the little-endian bit pattern of a parameter vector, used
/// to verify replicas stayed bitwise identical.
pub(crate) fn params_crc(params: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(params.len() * 4);
    for &x in params {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    moc_store::frame::crc32(&bytes)
}

/// Gate-noise seed of one rank at one iteration.
pub(crate) fn noise_seed(seed: u64, iteration: u64, rank: usize) -> u64 {
    seed ^ (iteration << 1) ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The rank thread body: processes commands until `Finish` or a `die`.
pub(crate) fn run_rank(ctx: RankContext) {
    let cfg = &ctx.config;
    let corpus = MarkovCorpus::new(cfg.model.vocab_size(), cfg.topics, cfg.seed);
    let mut model = TinyMoeLm::new(cfg.model.clone(), cfg.seed);
    let per = cfg.batch_per_rank();
    let lo = ctx.rank * per;

    let owned: Vec<String> = model
        .store()
        .module_names()
        .into_iter()
        .filter(|m| owner_rank(&cfg.topology, &cfg.model, m) == ctx.rank)
        .collect();

    while let Ok(command) = ctx.commands.recv() {
        match command {
            RankCommand::Step {
                iteration,
                epoch,
                die,
            } => {
                let start = Instant::now();
                model.store_mut().zero_grads();
                let global = corpus.batch(iteration - 1, cfg.batch, cfg.seq_len);
                let sub = &global[lo..lo + per];
                let stats = model.forward_backward(sub, noise_seed(cfg.seed, iteration, ctx.rank));
                if die {
                    // The node dies mid-iteration: work done, never reported.
                    return;
                }
                let grad = flatten_grads(model.store());
                let _ = ctx.events.send(RankEvent::Grad {
                    rank: ctx.rank,
                    iteration,
                    epoch,
                    grad,
                    expert_loads: stats.expert_loads,
                    compute_secs: start.elapsed().as_secs_f64(),
                });
            }
            RankCommand::Apply { grad } => {
                load_grads(model.store_mut(), &grad);
                adam_step(model.store_mut(), &cfg.adam);
                if ctx.rank == 0 {
                    let _ = ctx.events.send(RankEvent::Applied);
                }
            }
            RankCommand::Checkpoint {
                iteration,
                snapshot,
                persist,
            } => {
                let start = Instant::now();
                let mut jobs = Vec::new();
                for module in &owned {
                    let expert = expert_of(&cfg.model, module);
                    for part in [StatePart::Weights, StatePart::Optimizer] {
                        let governed = match part {
                            StatePart::Weights => cfg.pec_mode.weights,
                            StatePart::Optimizer => cfg.pec_mode.optimizer,
                            StatePart::Extra => false,
                        };
                        let (do_snapshot, do_persist) = match (expert, governed) {
                            (None, _) | (Some(_), false) => (true, true),
                            (Some(id), true) => (snapshot.contains(&id), persist.contains(&id)),
                        };
                        if do_snapshot {
                            jobs.push(ShardJob {
                                key: ShardKey::new(module.clone(), part, iteration),
                                payload: serialize_module(&model, module, part),
                                persist: do_persist,
                            });
                        }
                    }
                }
                let _ = ctx.events.send(RankEvent::Shards {
                    rank: ctx.rank,
                    jobs,
                    serialize_secs: start.elapsed().as_secs_f64(),
                });
            }
            RankCommand::Eval => {
                let val = corpus.validation(cfg.batch, cfg.seq_len);
                let loss = model.evaluate(&val).loss;
                let _ = ctx.events.send(RankEvent::EvalLoss { loss });
            }
            RankCommand::Restore { blobs } => {
                for blob in blobs.iter() {
                    deserialize_module(&mut model, &blob.module, blob.part, &blob.payload);
                }
                model.store_mut().zero_grads();
                let _ = ctx.events.send(RankEvent::Restored { rank: ctx.rank });
            }
            RankCommand::Finish => {
                let params = flatten_values(model.store());
                let param_crc = params_crc(&params);
                let _ = ctx.events.send(RankEvent::Finished {
                    rank: ctx.rank,
                    params,
                    param_crc,
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ParallelTopology {
        ParallelTopology::dp_ep(2, 4, 8, 8).unwrap()
    }

    #[test]
    fn every_module_has_exactly_one_owner() {
        let cfg = RuntimeConfig::tiny(topo());
        let model = TinyMoeLm::new(cfg.model.clone(), 1);
        for module in model.store().module_names() {
            let owner = owner_rank(&cfg.topology, &cfg.model, &module);
            assert!(owner < cfg.topology.dp(), "{module} -> rank {owner}");
        }
    }

    #[test]
    fn expert_owner_follows_ep_placement() {
        let cfg = RuntimeConfig::tiny(topo());
        // tiny_lm_8e: 8 experts over ep=8 -> expert e on ep rank e.
        for e in 0..8 {
            let owner = owner_rank(&cfg.topology, &cfg.model, &format!("layer1.expert{e}"));
            assert_eq!(owner, e);
        }
    }

    #[test]
    fn expert_owner_spreads_over_ep_groups() {
        // dp=16, ep=8 -> two EP groups; layers alternate groups.
        let topo = ParallelTopology::dp_ep(2, 8, 16, 8).unwrap();
        let model = moc_moe::presets::tiny_lm_8e();
        let l1 = owner_rank(&topo, &model, "layer1.expert0");
        let l3 = owner_rank(&topo, &model, "layer3.expert0");
        assert_eq!(l1, 0);
        assert_eq!(l3, 8, "second MoE layer owned by the second EP group");
    }

    #[test]
    fn grad_roundtrip_preserves_values() {
        let cfg = RuntimeConfig::tiny(topo());
        let mut model = TinyMoeLm::new(cfg.model.clone(), 3);
        let corpus = MarkovCorpus::new(cfg.model.vocab_size(), cfg.topics, cfg.seed);
        let batch = corpus.batch(0, 2, 16);
        model.forward_backward(&batch, 1);
        let grad = flatten_grads(model.store());
        assert_eq!(grad.len() as u64, model.store().scalar_count());
        let mut other = TinyMoeLm::new(cfg.model.clone(), 3);
        load_grads(other.store_mut(), &grad);
        assert_eq!(flatten_grads(other.store()), grad);
    }

    #[test]
    fn params_crc_detects_divergence() {
        let a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(params_crc(&a), params_crc(&b));
        b[1] = f32::from_bits(b[1].to_bits() ^ 1); // one-ulp divergence
        assert_ne!(params_crc(&a), params_crc(&b));
    }

    #[test]
    fn noise_seeds_differ_per_rank_and_iteration() {
        assert_ne!(noise_seed(7, 1, 0), noise_seed(7, 1, 1));
        assert_ne!(noise_seed(7, 1, 0), noise_seed(7, 2, 0));
        assert_eq!(noise_seed(7, 5, 3), noise_seed(7, 5, 3));
    }
}
