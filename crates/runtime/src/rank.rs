//! Rank worker threads and the coordinator↔rank wire protocol.
//!
//! Each *global* rank of the DP × TP × PP grid is an OS thread owning a
//! full replica of the model (the paper's ZeRO-2 DP setting replicates
//! weights; checkpoint *duties* are sharded over the shard groups, not
//! the replicas). A rank's [`moc_core::topology::RankCoord`] fixes its
//! role: the `tp · pp` members of one DP index form a shard group and
//! step the same DP batch slice with the same gate-noise seed, so the
//! grid run is bitwise identical to the `tp = pp = 1` baseline with the
//! same `dp`. Ranks run a lock-step protocol over crossbeam channels:
//!
//! 1. `Step`: exchange parameter CRCs around the TP consistency ring,
//!    wait for the upstream pipeline stage's token, compute
//!    forward+backward on the DP slice, relay tokens on (forward to the
//!    next stage, backward to the previous), then exchange gradients
//!    through the DP-group collective the step names — in star mode the
//!    flattened gradient is reported to the coordinator, in ring mode
//!    the rank all-reduces with its DP-group ring peers
//!    ([`crate::collective::ring_all_reduce`]), applies the optimizer
//!    step locally, and reports only timings and routing statistics.
//! 2. `Apply` (star mode): load the group-reduced gradient and take an
//!    identical Adam step — replicas stay bitwise identical.
//! 3. `Checkpoint`: serialize the modules this rank *owns* under the
//!    group-aware checkpoint-sharding placement and report the shard
//!    jobs.
//! 4. `Restore`: overwrite local state from recovery blobs.
//! 5. `InstallLinks`: adopt fresh ring/group endpoints (sent at run
//!    start and after every recovery, so aborted collectives can never
//!    leak messages into the next epoch).
//!
//! A `Step` carrying `die: true` makes the thread exit mid-iteration
//! without reporting — the injected node kill. The coordinator only
//! learns of it through the missing reply (star), through the ring
//! aborts the death causes in the DP-group peers, or through the
//! stalled PP relays of its shard group.
//!
//! The flattened gradient and the CRC scratch live in per-thread
//! buffers reused across iterations, so steady-state steps perform zero
//! gradient-buffer heap allocations after the first iteration.

use crate::collective::{
    hier_all_reduce, ring_all_reduce, CollectiveKind, GroupEndpoints, HierEndpoints, RingAbort,
    RingEndpoints,
};
use crate::config::RuntimeConfig;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use moc_core::topology::{ParallelTopology, RankCoord};
use moc_core::twolevel::ShardJob;
use moc_moe::{ExpertId, MoeModelConfig};
use moc_obs::{Counter, Flow, SpanKind, TelemetryCell, TraceSink};
use moc_store::{ShardKey, StatePart};
use moc_train::checkpoint::{deserialize_module, expert_of, serialize_module};
use moc_train::{adam_step, MarkovCorpus, ParamStore, TinyMoeLm};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One restored shard broadcast to every rank after recovery.
#[derive(Debug, Clone)]
pub(crate) struct RestoreBlob {
    pub module: String,
    pub part: StatePart,
    pub payload: Bytes,
}

/// One adopted DP slice's result, carried alongside a rank's own
/// gradient while the run is elastically shrunk: the gradient the dead
/// shard group would have produced (bitwise — slice and gate noise are
/// pure functions of `(iteration, dp)`), plus its routing statistics.
#[derive(Debug)]
pub(crate) struct AdoptedGrad {
    /// The dead shard group's DP index.
    pub dp: usize,
    /// Its slice's flattened gradient.
    pub grad: Vec<f32>,
    /// Its slice's per-layer expert loads.
    pub expert_loads: Vec<Vec<u64>>,
}

/// Per-step chaos directives, lowered by the coordinator from the
/// FaultPlan v2 schedule. Default is no chaos.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StepChaos {
    /// Gray control-plane failure: delay the step *report* by this much.
    /// The rank's data-plane collectives complete normally; only the
    /// coordinator sees silence — long enough to be suspected, short
    /// enough to be re-admitted.
    pub report_delay: Option<Duration>,
    /// Mesh congestion: enter this step's collectives late by this much.
    /// Past the peer heartbeat deadline, the collective aborts and the
    /// coordinator rolls back without declaring deaths.
    pub mesh_delay: Option<Duration>,
    /// Mesh partition: every collective message of this rank is dropped;
    /// the rank aborts the step immediately and its peers time out.
    pub mesh_drop: bool,
}

/// Coordinator → rank commands.
#[derive(Debug, Clone)]
pub(crate) enum RankCommand {
    /// Run one training iteration; `die` simulates the node kill.
    Step {
        iteration: u64,
        /// Recovery generation, echoed back so the coordinator can
        /// discard replies from threads that predate a rollback.
        epoch: u64,
        die: bool,
        /// Collective to exchange gradients through this iteration (the
        /// coordinator switches to `Star` during ring-fallback windows).
        collective: CollectiveKind,
        /// Injected straggler slowdown factor, if this rank is a victim.
        slow_factor: Option<f64>,
        /// Injected gray-failure directives for this step.
        chaos: StepChaos,
    },
    /// Adopt fresh collective endpoints (run start and after every
    /// recovery): the rank's DP-group ring (ring/hierarchical
    /// collectives), the dead DP slots it drives while the world is
    /// shrunk, its two-level endpoints (hierarchical collective at full
    /// shape), and its TP/PP group links (mixed-parallelism worlds only).
    InstallLinks {
        ring: Option<RingEndpoints>,
        /// Ring endpoints of the dead DP slots this rank adopted: while
        /// degraded, the mesh keeps its full DP size and the adopter
        /// drives each dead slot's position with the adopted gradient.
        adopted_rings: Vec<(usize, RingEndpoints)>,
        hier: Option<HierEndpoints>,
        groups: Option<GroupEndpoints>,
    },
    /// Load the reduced gradient and apply the optimizer step (star).
    Apply { grad: Arc<Vec<f32>> },
    /// Adopt an elastic-rebalance role: replace the rank's
    /// checkpoint-duty module set and the dead DP slices it additionally
    /// computes each step (sent at elastic-run start, after every
    /// shrink, and after every expand).
    Reconfigure {
        owned: Arc<Vec<String>>,
        adopted_slices: Arc<Vec<usize>>,
    },
    /// Serialize the rank's *entire* replica state (every module, both
    /// parts) — the bitwise template a rejoining rank is seeded from.
    ExportState,
    /// Serialize owned modules for the checkpoint at `iteration`.
    Checkpoint {
        iteration: u64,
        snapshot: Arc<HashSet<ExpertId>>,
        persist: Arc<HashSet<ExpertId>>,
    },
    /// Evaluate validation loss (sent to rank 0 only).
    Eval,
    /// Overwrite local state from recovery blobs.
    Restore { blobs: Arc<Vec<RestoreBlob>> },
    /// Report final parameters and exit.
    Finish,
}

/// Rank → coordinator events.
#[derive(Debug)]
pub(crate) enum RankEvent {
    /// Star iteration result: flattened gradient plus routing statistics.
    Grad {
        rank: usize,
        iteration: u64,
        epoch: u64,
        grad: Vec<f32>,
        expert_loads: Vec<Vec<u64>>,
        compute_secs: f64,
        /// Injected straggler stall, 0 when the rank was not slowed.
        stall_secs: f64,
        /// Whether the rank's TP group exchanged identical param CRCs.
        tp_consistent: bool,
        /// Time spent in the TP consistency exchange.
        tp_sync_secs: f64,
        /// Blocking time in the PP relay (the rank's pipeline bubble).
        pp_wait_secs: f64,
        /// Adopted dead-slice results (elastic degraded mode; empty
        /// otherwise).
        adopted: Vec<AdoptedGrad>,
    },
    /// Ring iteration result: the gradient was all-reduced peer-to-peer
    /// within the DP group and applied locally; only statistics travel
    /// to the coordinator.
    StepDone {
        rank: usize,
        iteration: u64,
        epoch: u64,
        expert_loads: Vec<Vec<u64>>,
        compute_secs: f64,
        /// Injected straggler stall, 0 when the rank was not slowed.
        stall_secs: f64,
        /// Active reduce-leg work (fold/copy/send).
        reduce_scatter_secs: f64,
        /// Active gather-leg work (copy/forward).
        all_gather_secs: f64,
        /// Blocking time waiting on ring peers.
        ring_wait_secs: f64,
        /// Local optimizer step (load + Adam).
        apply_secs: f64,
        /// Whether the rank's TP group exchanged identical param CRCs.
        tp_consistent: bool,
        /// Time spent in the TP consistency exchange.
        tp_sync_secs: f64,
        /// Blocking time in the PP relay (the rank's pipeline bubble).
        pp_wait_secs: f64,
        /// Per-layer expert loads of each adopted dead slice (elastic
        /// degraded mode; empty otherwise) — the gradients themselves
        /// were folded in-band by the survivor ring, but the routing
        /// statistics still travel to the coordinator.
        adopted_loads: Vec<Vec<Vec<u64>>>,
    },
    /// A group collective (DP ring, TP ring, or PP relay) timed out on a
    /// peer and the iteration was abandoned without applying (the
    /// coordinator will recover and roll back).
    StepAborted {
        rank: usize,
        iteration: u64,
        epoch: u64,
    },
    /// A rank's acknowledgement that the optimizer step was applied.
    Applied { rank: usize },
    /// Serialized checkpoint shards of the rank's owned modules.
    Shards {
        rank: usize,
        jobs: Vec<ShardJob>,
        serialize_secs: f64,
    },
    /// Validation loss (rank 0).
    EvalLoss { loss: f32 },
    /// Recovery blobs applied.
    Restored { rank: usize },
    /// The rank's full replica state (reply to `ExportState`; the
    /// coordinator has exactly one export outstanding at a time, so the
    /// reply needs no origin).
    StateExport { blobs: Vec<RestoreBlob> },
    /// Final flattened parameters and their checksum.
    Finished {
        rank: usize,
        params: Vec<f32>,
        param_crc: u32,
    },
}

/// Everything a rank thread needs.
pub(crate) struct RankContext {
    pub rank: usize,
    pub coord: RankCoord,
    pub config: RuntimeConfig,
    pub commands: Receiver<RankCommand>,
    pub events: Sender<RankEvent>,
    pub sink: TraceSink,
    /// Live-telemetry counter cell (inert when telemetry is off).
    pub telemetry: TelemetryCell,
}

/// The model layer a module belongs to (`layer{N}.…` names), if any.
fn layer_of(module: &str) -> Option<usize> {
    let rest = module.strip_prefix("layer")?;
    let (layer_str, _) = rest.split_once('.')?;
    layer_str.parse().ok()
}

/// The grid coordinates that own checkpointing a module under the
/// runtime's group-aware checkpoint-sharding placement:
///
/// * **DP**: expert modules live on the shard group hosting them under
///   the plan's group keying ([`moc_ckpt::shard_group_of_expert`]);
///   non-expert modules spread over all DP indices by a deterministic
///   name hash — mirroring `moc_train::TrainingCheckpointer`'s node
///   placement.
/// * **PP**: a module with a layer index lives on the pipeline stage
///   owning that layer; layer-less modules (the embedding) live on
///   stage 0.
/// * **TP**: the owning tensor slice within the stage is spread by a
///   second name hash, so TP peers share the group's serialization
///   load.
pub fn owner_coord(topo: &ParallelTopology, model: &MoeModelConfig, module: &str) -> RankCoord {
    let n = model.num_experts();
    let dp = match expert_of(model, module) {
        Some(id) => moc_ckpt::shard_group_of_expert(topo, id, n),
        None => {
            let h: usize = module.bytes().map(|b| b as usize).sum();
            h % topo.dp()
        }
    };
    let pp = match layer_of(module) {
        Some(layer) => topo.stage_of_layer(layer, model.num_layers()),
        None => 0,
    };
    let tp = module.bytes().fold(0usize, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(b as usize)
    }) % topo.tp();
    RankCoord { dp, tp, pp }
}

/// The global rank that owns checkpointing a module (see
/// [`owner_coord`]). With `tp = pp = 1` this is exactly the DP owner of
/// the pre-shard-group runtime.
pub fn owner_rank(topo: &ParallelTopology, model: &MoeModelConfig, module: &str) -> usize {
    topo.global_rank_of(owner_coord(topo, model, module))
}

/// Flattens every parameter gradient in registration order.
#[cfg(test)]
pub(crate) fn flatten_grads(store: &ParamStore) -> Vec<f32> {
    let mut out = Vec::new();
    flatten_grads_into(store, &mut out);
    out
}

/// Flattens every parameter gradient in registration order into a reused
/// buffer — after warm-up the buffer's capacity suffices and no
/// allocation happens.
pub(crate) fn flatten_grads_into(store: &ParamStore, out: &mut Vec<f32>) {
    out.clear();
    for p in store.params() {
        out.extend_from_slice(p.grad.data());
    }
}

/// Loads a flattened gradient back into the store.
pub(crate) fn load_grads(store: &mut ParamStore, grad: &[f32]) {
    let mut offset = 0;
    for p in store.params_mut() {
        let n = p.grad.len();
        p.grad.data_mut().copy_from_slice(&grad[offset..offset + n]);
        offset += n;
    }
    assert_eq!(offset, grad.len(), "gradient length mismatch");
}

/// Flattens every parameter value in registration order.
pub(crate) fn flatten_values(store: &ParamStore) -> Vec<f32> {
    store
        .params()
        .iter()
        .flat_map(|p| p.value.data().iter().copied())
        .collect()
}

/// CRC-32 over the little-endian bit pattern of a parameter vector, used
/// to verify replicas stayed bitwise identical.
pub(crate) fn params_crc(params: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(params.len() * 4);
    for &x in params {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    moc_store::frame::crc32(&bytes)
}

/// CRC-32 over every parameter value in registration order, staged
/// through a reused byte scratch — after warm-up the buffer's capacity
/// suffices and the per-iteration TP consistency check allocates
/// nothing.
pub(crate) fn store_params_crc(store: &ParamStore, scratch: &mut Vec<u8>) -> u32 {
    scratch.clear();
    for p in store.params() {
        for &x in p.value.data() {
            scratch.extend_from_slice(&x.to_le_bytes());
        }
    }
    moc_store::frame::crc32(scratch)
}

/// Gate-noise seed of one shard group at one iteration. Keyed by the DP
/// coordinate — not the global rank — so the `tp · pp` members of a
/// shard group draw identical gate noise and a grid run reproduces the
/// `tp = pp = 1` baseline bitwise.
pub(crate) fn noise_seed(seed: u64, iteration: u64, dp: usize) -> u64 {
    seed ^ (iteration << 1) ^ (dp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The rank thread body: processes commands until `Finish` or a `die`.
pub(crate) fn run_rank(ctx: RankContext) {
    // The sink moves out so span recording can borrow it mutably while
    // the abort closures capture `ctx.events`; dropping it at thread exit
    // (including a `die` return) flushes its spans into the merged trace,
    // and the flight-recorder ring is written at record time, so a dead
    // rank's final spans stay visible to the fault dump.
    let mut sink = ctx.sink;
    let cfg = &ctx.config;
    let corpus = MarkovCorpus::new(cfg.model.vocab_size(), cfg.topics, cfg.seed);
    let mut model = TinyMoeLm::new(cfg.model.clone(), cfg.seed);
    let per = cfg.batch_per_rank();
    // The batch slice follows the DP coordinate: every member of a shard
    // group steps the same slice (TP/PP parallelize the model, not the
    // data).
    let lo = ctx.coord.dp * per;

    // Checkpoint duties start at the static group-aware placement; an
    // elastic run replaces them (and installs adopted dead slices)
    // through `Reconfigure`.
    let mut owned: Vec<String> = model
        .store()
        .module_names()
        .into_iter()
        .filter(|m| owner_rank(&cfg.topology, &cfg.model, m) == ctx.rank)
        .collect();
    let mut adopted_slices: Vec<usize> = Vec::new();

    // Collective endpoints and the flattened-gradient / CRC buffers
    // persist across iterations: the gradient buffer is the rank's only
    // gradient-sized scratch and is never reallocated after the first
    // step.
    let mut ring: Option<RingEndpoints> = None;
    let mut adopted_rings: Vec<(usize, RingEndpoints)> = Vec::new();
    let mut hier: Option<HierEndpoints> = None;
    let mut groups: Option<GroupEndpoints> = None;
    let mut grad_buf: Vec<f32> = Vec::new();
    let mut crc_buf: Vec<u8> = Vec::new();
    // Commands without an iteration of their own (Apply, Eval, Restore,
    // ExportState) are traced under the last stepped iteration.
    let mut last_iteration: u64 = 0;

    while let Ok(command) = ctx.commands.recv() {
        match command {
            RankCommand::Step {
                iteration,
                epoch,
                die,
                collective,
                slow_factor,
                chaos,
            } => {
                last_iteration = iteration;
                let abort = |_: crate::collective::GroupAbort| {
                    let _ = ctx.events.send(RankEvent::StepAborted {
                        rank: ctx.rank,
                        iteration,
                        epoch,
                    });
                };
                // Injected mesh partition: the rank's collective messages
                // are all dropped this step, so nothing it could do would
                // complete — abandon immediately; peers time out and the
                // coordinator rolls the iteration back.
                if chaos.mesh_drop {
                    let drop_trace = sink.now();
                    sink.span(SpanKind::Fault, "mesh-drop", iteration, drop_trace);
                    let _ = ctx.events.send(RankEvent::StepAborted {
                        rank: ctx.rank,
                        iteration,
                        epoch,
                    });
                    continue;
                }
                // Injected mesh congestion: enter the collectives late.
                if let Some(d) = chaos.mesh_delay {
                    let delay_trace = sink.now();
                    std::thread::sleep(d);
                    sink.record(
                        SpanKind::Fault,
                        "mesh-delay",
                        iteration,
                        delay_trace,
                        d.as_secs_f64(),
                        Flow::None,
                    );
                }
                // TP replica-consistency exchange on the entry params
                // (the state every peer should share after the previous
                // apply). Skipped entirely — including the
                // O(|params|) CRC — when the TP degree is 1 (e.g. a
                // PP-only grid).
                let tp_start = Instant::now();
                let tp_trace = sink.now();
                let mut tp_consistent = true;
                let mut tp_sync_secs = 0.0;
                if let Some(g) = groups.as_ref().filter(|g| g.tp > 1) {
                    let crc = store_params_crc(model.store(), &mut crc_buf);
                    match g.tp_exchange(crc, epoch, iteration, cfg.heartbeat_timeout) {
                        Ok(consistent) => {
                            tp_consistent = consistent;
                            tp_sync_secs = tp_start.elapsed().as_secs_f64();
                            ctx.telemetry
                                .add_secs(Counter::CollectiveNanos, tp_sync_secs);
                            sink.record(
                                SpanKind::Collective,
                                "tp-sync",
                                iteration,
                                tp_trace,
                                tp_sync_secs,
                                Flow::None,
                            );
                        }
                        Err(e) => {
                            abort(e);
                            continue;
                        }
                    }
                }
                // PP forward relay: wait for the upstream stage's token.
                let mut pp_wait_secs = 0.0;
                if let Some(g) = &groups {
                    let wait_trace = sink.now();
                    match g.pp_forward_wait(epoch, iteration, cfg.heartbeat_timeout) {
                        Ok(waited) => {
                            pp_wait_secs += waited;
                            ctx.telemetry.add_secs(Counter::CollectiveNanos, waited);
                            sink.record(
                                SpanKind::Collective,
                                "pp-wait",
                                iteration,
                                wait_trace,
                                waited,
                                Flow::None,
                            );
                        }
                        Err(e) => {
                            abort(e);
                            continue;
                        }
                    }
                }
                let start = Instant::now();
                let compute_trace = sink.now();
                model.store_mut().zero_grads();
                let global = corpus.batch(iteration - 1, cfg.batch, cfg.seq_len);
                let sub = &global[lo..lo + per];
                let stats =
                    model.forward_backward(sub, noise_seed(cfg.seed, iteration, ctx.coord.dp));
                // The rank's own gradient is flattened immediately: the
                // adopted-slice passes below reuse the store's gradient
                // buffers and would otherwise clobber it.
                flatten_grads_into(model.store(), &mut grad_buf);
                // Elastic degraded mode: additionally compute each
                // adopted dead group's slice. Slice and gate noise are
                // pure functions of `(iteration, dp)`, so these
                // gradients are bitwise what the dead ranks would have
                // produced — the coordinator folds them at the dead DP
                // positions and the trajectory matches the fixed shape.
                let mut adopted: Vec<AdoptedGrad> = Vec::with_capacity(adopted_slices.len());
                for &d in &adopted_slices {
                    model.store_mut().zero_grads();
                    let alo = d * per;
                    let astats = model.forward_backward(
                        &global[alo..alo + per],
                        noise_seed(cfg.seed, iteration, d),
                    );
                    let mut grad = Vec::new();
                    flatten_grads_into(model.store(), &mut grad);
                    adopted.push(AdoptedGrad {
                        dp: d,
                        grad,
                        expert_loads: astats.expert_loads,
                    });
                }
                let compute_secs = start.elapsed().as_secs_f64();
                ctx.telemetry.add_secs(Counter::ComputeNanos, compute_secs);
                // Recorded before the `die` early-return below: a killed
                // rank's last compute span must land in its flight ring.
                sink.record(
                    SpanKind::Phase,
                    "compute",
                    iteration,
                    compute_trace,
                    compute_secs,
                    Flow::None,
                );
                // An injected straggler stretches the step: the extra
                // wall time is reported so stall amplification shows up
                // in the metrics, while the numerics stay untouched.
                let stall_secs = match slow_factor {
                    Some(factor) => {
                        let stall = compute_secs * (factor - 1.0);
                        ctx.telemetry.add_secs(Counter::StallNanos, stall);
                        let stall_trace = sink.now();
                        std::thread::sleep(std::time::Duration::from_secs_f64(stall));
                        sink.record(
                            SpanKind::Phase,
                            "straggler-stall",
                            iteration,
                            stall_trace,
                            stall,
                            Flow::None,
                        );
                        stall
                    }
                    None => 0.0,
                };
                if die {
                    // The node dies mid-iteration: work done, never
                    // reported, relay tokens never sent — the death
                    // propagates through the group collectives.
                    return;
                }
                // PP relay: hand the activation token downstream, then
                // run the backward leg (last stage initiates).
                if let Some(g) = &groups {
                    let relay_trace = sink.now();
                    let relay = g
                        .pp_forward_send(epoch, iteration)
                        .and_then(|()| g.pp_backward(epoch, iteration, cfg.heartbeat_timeout));
                    match relay {
                        Ok(waited) => {
                            pp_wait_secs += waited;
                            ctx.telemetry.add_secs(Counter::CollectiveNanos, waited);
                            sink.span(SpanKind::Collective, "pp-relay", iteration, relay_trace);
                        }
                        Err(e) => {
                            abort(e);
                            continue;
                        }
                    }
                }
                match collective {
                    CollectiveKind::Star => {
                        // Injected heartbeat loss: the work is done but
                        // the report goes silent past one or more collect
                        // windows — the coordinator suspects, then
                        // re-admits on arrival.
                        if let Some(d) = chaos.report_delay {
                            let loss_trace = sink.now();
                            std::thread::sleep(d);
                            sink.record(
                                SpanKind::Fault,
                                "heartbeat-loss",
                                iteration,
                                loss_trace,
                                d.as_secs_f64(),
                                Flow::None,
                            );
                        }
                        let _ = ctx.events.send(RankEvent::Grad {
                            rank: ctx.rank,
                            iteration,
                            epoch,
                            grad: grad_buf.clone(),
                            expert_loads: stats.expert_loads,
                            compute_secs,
                            stall_secs,
                            tp_consistent,
                            tp_sync_secs,
                            pp_wait_secs,
                            adopted,
                        });
                    }
                    CollectiveKind::Ring | CollectiveKind::Hierarchical => {
                        let ring_trace = sink.now();
                        let timeout = cfg.heartbeat_timeout;
                        let (span_name, result) = if collective == CollectiveKind::Hierarchical {
                            // Hierarchical steps only run at full shape:
                            // while the world is shrunk the coordinator
                            // falls back to the survivor ring (or the
                            // star window).
                            debug_assert!(adopted.is_empty(), "hierarchical step in degraded mode");
                            let endpoints = hier.as_ref().expect("hier endpoints installed");
                            (
                                "hier-all-reduce",
                                hier_all_reduce(
                                    endpoints,
                                    &mut grad_buf,
                                    epoch,
                                    iteration,
                                    timeout,
                                ),
                            )
                        } else {
                            // While the world is shrunk the rank also
                            // drives its adopted dead slots' ring
                            // positions, each on a scoped helper thread
                            // running the unchanged collective over the
                            // adopted gradient: the mesh keeps its full
                            // DP size, so the fold order — and therefore
                            // the bits — match the fixed shape. Every
                            // slot ends with the same averaged gradient,
                            // so the rank's own buffer holds the result.
                            // The slots must run concurrently: a dead
                            // slot downstream of this rank's own relays
                            // gradient chunks the rank itself is blocked
                            // on.
                            let endpoints = ring.as_ref().expect("ring endpoints installed");
                            let own_grad = &mut grad_buf;
                            let result = std::thread::scope(|scope| {
                                let helpers: Vec<_> = adopted
                                    .iter_mut()
                                    .map(|a| {
                                        let ep = adopted_rings
                                            .iter()
                                            .find(|(d, _)| *d == a.dp)
                                            .map(|(_, ep)| ep)
                                            .expect("adopted slot endpoints installed");
                                        let grad = &mut a.grad;
                                        scope.spawn(move || {
                                            ring_all_reduce(ep, grad, epoch, iteration, timeout)
                                        })
                                    })
                                    .collect();
                                let own =
                                    ring_all_reduce(endpoints, own_grad, epoch, iteration, timeout);
                                let mut helper_abort: Option<RingAbort> = None;
                                for h in helpers {
                                    if let Err(e) = h.join().expect("adopted-slot ring thread") {
                                        helper_abort.get_or_insert(e);
                                    }
                                }
                                match (own, helper_abort) {
                                    (Ok(t), None) => Ok(t),
                                    (Err(e), _) | (Ok(_), Some(e)) => Err(e),
                                }
                            });
                            ("ring-all-reduce", result)
                        };
                        match result {
                            Ok(timings) => {
                                ctx.telemetry.add_secs(
                                    Counter::CollectiveNanos,
                                    timings.reduce_scatter_secs
                                        + timings.all_gather_secs
                                        + timings.wait_secs,
                                );
                                sink.span(SpanKind::Collective, span_name, iteration, ring_trace);
                                let apply_start = Instant::now();
                                let apply_trace = sink.now();
                                load_grads(model.store_mut(), &grad_buf);
                                adam_step(model.store_mut(), &cfg.adam);
                                sink.span(SpanKind::Phase, "apply", iteration, apply_trace);
                                // Injected heartbeat loss (ring): the
                                // all-reduce and the apply completed —
                                // only the StepDone report goes silent.
                                if let Some(d) = chaos.report_delay {
                                    let loss_trace = sink.now();
                                    std::thread::sleep(d);
                                    sink.record(
                                        SpanKind::Fault,
                                        "heartbeat-loss",
                                        iteration,
                                        loss_trace,
                                        d.as_secs_f64(),
                                        Flow::None,
                                    );
                                }
                                let _ = ctx.events.send(RankEvent::StepDone {
                                    rank: ctx.rank,
                                    iteration,
                                    epoch,
                                    expert_loads: stats.expert_loads,
                                    compute_secs,
                                    stall_secs,
                                    reduce_scatter_secs: timings.reduce_scatter_secs,
                                    all_gather_secs: timings.all_gather_secs,
                                    ring_wait_secs: timings.wait_secs,
                                    apply_secs: apply_start.elapsed().as_secs_f64(),
                                    tp_consistent,
                                    tp_sync_secs,
                                    pp_wait_secs,
                                    adopted_loads: adopted
                                        .into_iter()
                                        .map(|a| a.expert_loads)
                                        .collect(),
                                });
                            }
                            Err(_) => {
                                // A peer died or stalled past the
                                // heartbeat: abandon the iteration
                                // without applying; the coordinator
                                // rolls everyone back.
                                let _ = ctx.events.send(RankEvent::StepAborted {
                                    rank: ctx.rank,
                                    iteration,
                                    epoch,
                                });
                            }
                        }
                    }
                }
            }
            RankCommand::InstallLinks {
                ring: new_ring,
                adopted_rings: new_adopted,
                hier: new_hier,
                groups: new_groups,
            } => {
                ring = new_ring;
                adopted_rings = new_adopted;
                hier = new_hier;
                groups = new_groups;
            }
            RankCommand::Apply { grad } => {
                let apply_trace = sink.now();
                load_grads(model.store_mut(), &grad);
                adam_step(model.store_mut(), &cfg.adam);
                sink.span(SpanKind::Phase, "apply", last_iteration, apply_trace);
                let _ = ctx.events.send(RankEvent::Applied { rank: ctx.rank });
            }
            RankCommand::Reconfigure {
                owned: new_owned,
                adopted_slices: new_slices,
            } => {
                owned = (*new_owned).clone();
                adopted_slices = (*new_slices).clone();
            }
            RankCommand::ExportState => {
                let export_trace = sink.now();
                let blobs: Vec<RestoreBlob> = model
                    .store()
                    .module_names()
                    .into_iter()
                    .flat_map(|module| {
                        [StatePart::Weights, StatePart::Optimizer].map(|part| RestoreBlob {
                            payload: serialize_module(&model, &module, part),
                            module: module.clone(),
                            part,
                        })
                    })
                    .collect();
                sink.span(
                    SpanKind::Elastic,
                    "export-state",
                    last_iteration,
                    export_trace,
                );
                let _ = ctx.events.send(RankEvent::StateExport { blobs });
            }
            RankCommand::Checkpoint {
                iteration,
                snapshot,
                persist,
            } => {
                let start = Instant::now();
                let serialize_trace = sink.now();
                let mut jobs = Vec::new();
                for module in &owned {
                    let expert = expert_of(&cfg.model, module);
                    for part in [StatePart::Weights, StatePart::Optimizer] {
                        let governed = match part {
                            StatePart::Weights => cfg.pec_mode.weights,
                            StatePart::Optimizer => cfg.pec_mode.optimizer,
                            StatePart::Extra => false,
                        };
                        let (do_snapshot, do_persist) = match (expert, governed) {
                            (None, _) | (Some(_), false) => (true, true),
                            (Some(id), true) => (snapshot.contains(&id), persist.contains(&id)),
                        };
                        if do_snapshot {
                            jobs.push(ShardJob {
                                key: ShardKey::new(module.clone(), part, iteration),
                                payload: serialize_module(&model, module, part),
                                persist: do_persist,
                            });
                        }
                    }
                }
                sink.span(SpanKind::Ckpt, "ckpt-serialize", iteration, serialize_trace);
                let _ = ctx.events.send(RankEvent::Shards {
                    rank: ctx.rank,
                    jobs,
                    serialize_secs: start.elapsed().as_secs_f64(),
                });
            }
            RankCommand::Eval => {
                let eval_trace = sink.now();
                let val = corpus.validation(cfg.batch, cfg.seq_len);
                let loss = model.evaluate(&val).loss;
                sink.span(SpanKind::Control, "eval", last_iteration, eval_trace);
                let _ = ctx.events.send(RankEvent::EvalLoss { loss });
            }
            RankCommand::Restore { blobs } => {
                let restore_trace = sink.now();
                for blob in blobs.iter() {
                    deserialize_module(&mut model, &blob.module, blob.part, &blob.payload);
                }
                model.store_mut().zero_grads();
                sink.span(
                    SpanKind::Fault,
                    "restore-apply",
                    last_iteration,
                    restore_trace,
                );
                let _ = ctx.events.send(RankEvent::Restored { rank: ctx.rank });
            }
            RankCommand::Finish => {
                let params = flatten_values(model.store());
                let param_crc = params_crc(&params);
                let _ = ctx.events.send(RankEvent::Finished {
                    rank: ctx.rank,
                    params,
                    param_crc,
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ParallelTopology {
        ParallelTopology::dp_ep(2, 4, 8, 8).unwrap()
    }

    #[test]
    fn every_module_has_exactly_one_owner() {
        let cfg = RuntimeConfig::tiny(topo());
        let model = TinyMoeLm::new(cfg.model.clone(), 1);
        for module in model.store().module_names() {
            let owner = owner_rank(&cfg.topology, &cfg.model, &module);
            assert!(owner < cfg.topology.dp(), "{module} -> rank {owner}");
        }
    }

    #[test]
    fn expert_owner_follows_ep_placement() {
        let cfg = RuntimeConfig::tiny(topo());
        // tiny_lm_8e: 8 experts over ep=8 -> expert e on ep rank e.
        for e in 0..8 {
            let owner = owner_rank(&cfg.topology, &cfg.model, &format!("layer1.expert{e}"));
            assert_eq!(owner, e);
        }
    }

    #[test]
    fn expert_owner_spreads_over_ep_groups() {
        // dp=16, ep=8 -> two EP groups; layers alternate groups.
        let topo = ParallelTopology::dp_ep(2, 8, 16, 8).unwrap();
        let model = moc_moe::presets::tiny_lm_8e();
        let l1 = owner_rank(&topo, &model, "layer1.expert0");
        let l3 = owner_rank(&topo, &model, "layer3.expert0");
        assert_eq!(l1, 0);
        assert_eq!(l3, 8, "second MoE layer owned by the second EP group");
    }

    #[test]
    fn owner_coord_spreads_over_stages_and_slices() {
        // dp=2, tp=2, pp=2 over the 4-layer tiny model: layers 0-1 on
        // stage 0, layers 2-3 on stage 1; the embedding on stage 0.
        let topo = ParallelTopology::new(1, 8, 2, 2, 2, 2).unwrap();
        let model = moc_moe::presets::tiny_lm_8e();
        assert_eq!(owner_coord(&topo, &model, "layer1.expert0").pp, 0);
        assert_eq!(owner_coord(&topo, &model, "layer3.expert0").pp, 1);
        assert_eq!(owner_coord(&topo, &model, "embedding").pp, 0);
        // Every owner is a valid global rank, and ownership is a
        // partition: each module has exactly one owner in the world.
        let m = TinyMoeLm::new(model.clone(), 1);
        let mut seen_tp = std::collections::HashSet::new();
        for module in m.store().module_names() {
            let owner = owner_rank(&topo, &model, &module);
            assert!(owner < topo.world_size(), "{module} -> {owner}");
            seen_tp.insert(owner_coord(&topo, &model, &module).tp);
        }
        assert_eq!(seen_tp.len(), 2, "both tensor slices share the load");
    }

    #[test]
    fn owner_rank_with_flat_topology_matches_dp_owner() {
        // tp = pp = 1: the global owner must equal the historical DP
        // owner, keeping pre-shard-group stores recoverable.
        let topo = ParallelTopology::dp_ep(2, 4, 8, 8).unwrap();
        let model = moc_moe::presets::tiny_lm_8e();
        let m = TinyMoeLm::new(model.clone(), 1);
        for module in m.store().module_names() {
            let c = owner_coord(&topo, &model, &module);
            assert_eq!((c.tp, c.pp), (0, 0));
            assert_eq!(owner_rank(&topo, &model, &module), c.dp);
        }
    }

    #[test]
    fn grad_roundtrip_preserves_values() {
        let cfg = RuntimeConfig::tiny(topo());
        let mut model = TinyMoeLm::new(cfg.model.clone(), 3);
        let corpus = MarkovCorpus::new(cfg.model.vocab_size(), cfg.topics, cfg.seed);
        let batch = corpus.batch(0, 2, 16);
        model.forward_backward(&batch, 1);
        let grad = flatten_grads(model.store());
        assert_eq!(grad.len() as u64, model.store().scalar_count());
        let mut other = TinyMoeLm::new(cfg.model.clone(), 3);
        load_grads(other.store_mut(), &grad);
        assert_eq!(flatten_grads(other.store()), grad);
    }

    #[test]
    fn params_crc_detects_divergence() {
        let a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(params_crc(&a), params_crc(&b));
        b[1] = f32::from_bits(b[1].to_bits() ^ 1); // one-ulp divergence
        assert_ne!(params_crc(&a), params_crc(&b));
    }

    #[test]
    fn noise_seeds_differ_per_rank_and_iteration() {
        assert_ne!(noise_seed(7, 1, 0), noise_seed(7, 1, 1));
        assert_ne!(noise_seed(7, 1, 0), noise_seed(7, 2, 0));
        assert_eq!(noise_seed(7, 5, 3), noise_seed(7, 5, 3));
    }
}
