//! Runtime configuration.
//!
//! A [`RuntimeConfig`] fully determines a live run: the model and virtual
//! cluster, the training workload, the two-level checkpointing policy
//! (including whether persists run synchronously inside the iteration or
//! asynchronously through the node agents), and the fault schedule. All
//! randomness derives from `seed`, so two runs with the same configuration
//! produce bitwise-identical parameters.

use crate::collective::CollectiveKind;
use crate::faults::{ChaosPlan, DetectorConfig};
use crate::injector::SlowEvent;
use moc_ckpt::EngineConfig;
use moc_core::placement::num_failure_domains;
use moc_core::topology::ParallelTopology;
use moc_moe::MoeModelConfig;
use moc_obs::ObsConfig;
use moc_store::{FaultPlan, RetryPolicy};
use moc_train::{AdamConfig, PecMode};
use std::fmt;
use std::time::Duration;

/// How checkpoints reach the persistent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// The paper's baseline: training blocks while shards are written to
    /// CPU memory *and* persistent storage inside the iteration.
    Sync,
    /// MoC's two-level path: shards are handed to the per-node agents,
    /// which copy to CPU memory and persist in the background while
    /// training continues (Fig. 8–9).
    Async,
}

/// Elastic-recovery policy: what the coordinator does when a node dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticConfig {
    /// Recover node deaths by *shrinking* onto the surviving ranks
    /// (surviving shard groups adopt the dead groups' batch slices and
    /// experts) instead of respawning the dead ranks. When every node is
    /// dead the coordinator still falls back to respawn — there is
    /// nobody left to shrink onto.
    pub shrink: bool,
    /// Expert replication factor of the placement plan: every expert is
    /// assigned to this many shard groups on distinct failure domains,
    /// and migration prefers a surviving replica. Must be at least 1 and
    /// at most the number of failure domains.
    pub replication: usize,
    /// Iterations after a shrink at which replacement ranks rejoin and
    /// the world expands back to the configured shape (`None` = stay
    /// degraded to the end of the run).
    pub rejoin_after: Option<u64>,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        Self {
            shrink: false,
            replication: 1,
            rejoin_after: None,
        }
    }
}

impl ElasticConfig {
    /// Shrink-mode recovery with the given replication factor and no
    /// automatic rejoin.
    pub fn shrink(replication: usize) -> Self {
        Self {
            shrink: true,
            replication,
            rejoin_after: None,
        }
    }
}

/// Error from [`RuntimeConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The TP/PP shape cannot be mapped onto the model: a pipeline stage
    /// or tensor slice would own nothing. (Until PR 4 this variant
    /// rejected *any* `tp·pp > 1`; the live runtime now runs real shard
    /// groups and only genuinely impossible shapes are refused.)
    UnsupportedParallelism {
        /// Configured tensor-parallel degree.
        tp: usize,
        /// Configured pipeline-parallel degree.
        pp: usize,
        /// Why the shape cannot run.
        reason: String,
    },
    /// The global batch does not divide evenly over the DP ranks.
    BatchNotDivisible {
        /// Configured global batch.
        batch: usize,
        /// Data-parallel degree.
        dp: usize,
    },
    /// The expert count does not spread evenly over the EP degree.
    ExpertsNotDivisible {
        /// Experts per MoE layer.
        experts: usize,
        /// Expert-parallel degree.
        ep: usize,
    },
    /// A PEC degree is zero or exceeds the expert count.
    BadPecDegree {
        /// Offending value.
        k: usize,
        /// Expert count.
        experts: usize,
    },
    /// `K_persist` exceeds `K_snapshot`: only snapshotted shards can be
    /// persisted, so the persist level must be a subset.
    PersistExceedsSnapshot {
        /// Configured persist degree.
        k_persist: usize,
        /// Configured snapshot degree.
        k_snapshot: usize,
    },
    /// The checkpoint interval is zero.
    ZeroCheckpointInterval,
    /// The corpus topic count does not divide the vocabulary.
    TopicsDontDivideVocab {
        /// Topic count.
        topics: usize,
        /// Vocabulary size.
        vocab: usize,
    },
    /// The ring collective's chunk size is zero.
    ZeroRingChunk,
    /// The checkpoint-engine policy is inconsistent (zero rebase interval
    /// or in-flight limit).
    BadCkptEngine {
        /// Why the engine config was rejected.
        reason: String,
    },
    /// The elastic replication factor cannot be hosted by the cluster:
    /// it is zero, or exceeds the number of distinct failure domains
    /// (nodes hosting shard-group leaders), so no placement plan can
    /// spread an expert's replicas over distinct domains. Rejected here
    /// — before any run starts — instead of panicking inside the
    /// placement planner.
    ReplicationExceedsDomains {
        /// Configured replication factor.
        replication: usize,
        /// Failure domains the topology offers.
        domains: usize,
    },
    /// A straggler event names a rank outside the world, a slowdown
    /// factor below 1, or a zero duration.
    BadStraggler {
        /// Offending rank.
        rank: usize,
        /// Offending slowdown factor.
        factor: f64,
        /// Offending profile duration.
        duration: u64,
    },
    /// The suspicion detector declares after zero misses — it would
    /// never admit any reply.
    ZeroDetectorMisses,
    /// The store retry policy allows zero attempts — every operation
    /// would fail before trying.
    ZeroRetryAttempts,
    /// The chaos plan contains a flap (die-then-rejoin) event but the
    /// elastic config has no shrink mode or no rejoin horizon, so the
    /// flapped node could never come back.
    FlapWithoutRejoin,
    /// A chaos event is out of range or inconsistent with the detector.
    BadChaosEvent {
        /// Why the event was rejected.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnsupportedParallelism { tp, pp, reason } => {
                write!(f, "unsupported TP={tp}/PP={pp} shape: {reason}")
            }
            ConfigError::BatchNotDivisible { batch, dp } => {
                write!(f, "global batch {batch} must divide over dp {dp}")
            }
            ConfigError::ExpertsNotDivisible { experts, ep } => {
                write!(f, "experts {experts} must divide over ep {ep}")
            }
            ConfigError::BadPecDegree { k, experts } => {
                write!(f, "pec degree {k} invalid for {experts} experts")
            }
            ConfigError::PersistExceedsSnapshot {
                k_persist,
                k_snapshot,
            } => {
                write!(
                    f,
                    "k_persist {k_persist} must not exceed k_snapshot {k_snapshot}"
                )
            }
            ConfigError::ZeroCheckpointInterval => write!(f, "i_ckpt must be positive"),
            ConfigError::TopicsDontDivideVocab { topics, vocab } => {
                write!(f, "topics {topics} must divide vocab {vocab}")
            }
            ConfigError::ZeroRingChunk => write!(f, "ring_chunk must be positive"),
            ConfigError::BadCkptEngine { reason } => {
                write!(f, "checkpoint engine config invalid: {reason}")
            }
            ConfigError::ReplicationExceedsDomains {
                replication,
                domains,
            } => {
                write!(
                    f,
                    "replication factor {replication} cannot be hosted by \
                     {domains} failure domains"
                )
            }
            ConfigError::BadStraggler {
                rank,
                factor,
                duration,
            } => {
                write!(
                    f,
                    "straggler rank {rank} / factor {factor} / duration {duration} invalid"
                )
            }
            ConfigError::ZeroDetectorMisses => {
                write!(f, "detector k_misses must be at least 1")
            }
            ConfigError::ZeroRetryAttempts => {
                write!(f, "store retry policy must allow at least 1 attempt")
            }
            ConfigError::FlapWithoutRejoin => {
                write!(
                    f,
                    "chaos plan flaps a node but elastic shrink/rejoin_after is \
                     not configured, so it could never rejoin"
                )
            }
            ConfigError::BadChaosEvent { reason } => {
                write!(f, "chaos event invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full description of a live training run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Model architecture (one full replica per DP rank).
    pub model: MoeModelConfig,
    /// Virtual cluster layout (one OS thread per DP rank).
    pub topology: ParallelTopology,
    /// Training horizon in iterations.
    pub total_iterations: u64,
    /// Checkpoint every `i_ckpt` iterations.
    pub i_ckpt: u64,
    /// Experts snapshotted per layer per checkpoint (`K_snapshot`).
    pub k_snapshot: usize,
    /// Experts persisted per layer per checkpoint (`K_persist`).
    pub k_persist: usize,
    /// Which state parts PEC governs (W / O / WO / NONE).
    pub pec_mode: PecMode,
    /// Whether recovery may read healthy nodes' CPU-memory snapshots.
    pub two_level: bool,
    /// Synchronous baseline or asynchronous two-level checkpointing.
    pub checkpoint_mode: CheckpointMode,
    /// Checkpoint-engine policy: delta shards, rebase interval, and the
    /// double-buffered in-flight limit of the persist pipeline.
    pub ckpt: EngineConfig,
    /// Fault schedule driving the injector.
    pub faults: FaultPlan,
    /// Straggler (slow-rank) schedule driving the injector.
    pub stragglers: Vec<SlowEvent>,
    /// FaultPlan v2: the unified chaos schedule (gray failures, flaps,
    /// mesh chaos, store outages) merged with `faults`/`stragglers` by
    /// the injector. Empty by default.
    pub chaos: ChaosPlan,
    /// Suspicion-based failure detection: consecutive missed heartbeat
    /// windows before a silent rank is declared dead, and the lease
    /// granted per additional window. `k_misses = 1` is the legacy
    /// single-miss detector.
    pub detector: DetectorConfig,
    /// Backoff policy of the [`moc_store::RetryStore`] wrapped around
    /// the run's object store: every store operation retries transient
    /// failures with capped exponential backoff before surfacing a typed
    /// exhaustion error.
    pub retry: RetryPolicy,
    /// Which collective exchanges gradients each iteration.
    pub collective: CollectiveKind,
    /// Ring/hierarchical chunk size in `f32` elements (ignored by the
    /// star path).
    pub ring_chunk: usize,
    /// Length of the star-fallback window a ring or hierarchical run
    /// opens after every recovery and elastic expand: exactly this many
    /// iterations run on the coordinator star before the configured
    /// collective (or, while shrunk, the survivor ring) takes over.
    /// Counted from the first iteration executed after the transition —
    /// `star_fallback_until = next_executed_iteration + this` on both
    /// paths.
    pub ring_fallback_iterations: u64,
    /// Elastic-recovery policy: shrink onto survivors vs respawn, the
    /// placement replication factor, and the rejoin horizon.
    pub elastic: ElasticConfig,
    /// Dynamic-K cumulative PLT budget (`None` = fixed K).
    pub dynamic_k_budget: Option<f64>,
    /// Global batch (sequences per iteration, split over DP ranks).
    pub batch: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Topic count of the synthetic corpus.
    pub topics: usize,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Master seed (model init, corpus, gate noise).
    pub seed: u64,
    /// Evaluate validation loss every this many iterations (0 = only at end).
    pub eval_every: u64,
    /// How long the coordinator waits for a rank's iteration result before
    /// declaring its node failed. Must exceed the worst-case iteration
    /// compute time.
    pub heartbeat_timeout: Duration,
    /// Observability: span tracing, flight recorder, trace export.
    /// Disabled by default — the hot path then pays one branch per
    /// would-be span.
    pub obs: ObsConfig,
}

impl RuntimeConfig {
    /// A small deterministic default: the tiny 8-expert LM, one sequence
    /// per rank, PEC `K_snapshot = 2`, `K_persist = 1`, async two-level
    /// checkpointing, ring gradient exchange, no faults.
    pub fn tiny(topology: ParallelTopology) -> Self {
        let model = moc_moe::presets::tiny_lm_8e();
        Self {
            model,
            topology,
            total_iterations: 24,
            i_ckpt: 6,
            k_snapshot: 2,
            k_persist: 1,
            pec_mode: PecMode::WO,
            two_level: true,
            checkpoint_mode: CheckpointMode::Async,
            ckpt: EngineConfig::default(),
            faults: FaultPlan::None,
            stragglers: Vec::new(),
            chaos: ChaosPlan::none(),
            detector: DetectorConfig::default(),
            retry: RetryPolicy::default(),
            collective: CollectiveKind::Ring,
            ring_chunk: 4096,
            ring_fallback_iterations: 1,
            elastic: ElasticConfig::default(),
            dynamic_k_budget: None,
            batch: topology.dp(),
            seq_len: 32,
            topics: 8,
            adam: AdamConfig::default(),
            seed: 17,
            eval_every: 8,
            heartbeat_timeout: Duration::from_secs(2),
            obs: ObsConfig::default(),
        }
    }

    /// Full checkpointing baseline over the same workload: PEC disabled,
    /// synchronous persists, storage-only recovery, coordinator-star
    /// gradient exchange.
    pub fn baseline(topology: ParallelTopology) -> Self {
        let model = moc_moe::presets::tiny_lm_8e();
        let n = model.num_experts();
        Self {
            k_snapshot: n,
            k_persist: n,
            pec_mode: PecMode::NONE,
            two_level: false,
            checkpoint_mode: CheckpointMode::Sync,
            ckpt: EngineConfig::full_only(),
            collective: CollectiveKind::Star,
            ..Self::tiny(topology)
        }
    }

    /// Number of rank threads (`dp · tp · pp`): one OS thread per global
    /// rank of the grid.
    pub fn world_size(&self) -> usize {
        self.topology.world_size()
    }

    /// Sequences each rank computes per iteration: the global batch
    /// splits over the DP axis; the `tp · pp` members of one shard group
    /// step the same DP slice.
    pub fn batch_per_rank(&self) -> usize {
        self.batch / self.topology.dp()
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let (tp, pp) = (self.topology.tp(), self.topology.pp());
        if pp > self.model.num_layers() {
            return Err(ConfigError::UnsupportedParallelism {
                tp,
                pp,
                reason: format!(
                    "{pp} pipeline stages over {} layers leaves a stage with no layer",
                    self.model.num_layers()
                ),
            });
        }
        if tp > self.model.hidden_size() {
            return Err(ConfigError::UnsupportedParallelism {
                tp,
                pp,
                reason: format!(
                    "{tp} tensor slices over hidden size {} leaves a slice with no column",
                    self.model.hidden_size()
                ),
            });
        }
        let dp = self.topology.dp();
        if self.batch == 0 || !self.batch.is_multiple_of(dp) {
            return Err(ConfigError::BatchNotDivisible {
                batch: self.batch,
                dp,
            });
        }
        let experts = self.model.num_experts();
        if !experts.is_multiple_of(self.topology.ep()) {
            return Err(ConfigError::ExpertsNotDivisible {
                experts,
                ep: self.topology.ep(),
            });
        }
        for k in [self.k_snapshot, self.k_persist] {
            if k == 0 || k > experts {
                return Err(ConfigError::BadPecDegree { k, experts });
            }
        }
        if self.k_persist > self.k_snapshot {
            return Err(ConfigError::PersistExceedsSnapshot {
                k_persist: self.k_persist,
                k_snapshot: self.k_snapshot,
            });
        }
        if self.i_ckpt == 0 {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        let vocab = self.model.vocab_size();
        if self.topics == 0 || !vocab.is_multiple_of(self.topics) {
            return Err(ConfigError::TopicsDontDivideVocab {
                topics: self.topics,
                vocab,
            });
        }
        if self.ring_chunk == 0 {
            return Err(ConfigError::ZeroRingChunk);
        }
        let domains = num_failure_domains(&self.topology);
        if self.elastic.replication == 0 || self.elastic.replication > domains {
            return Err(ConfigError::ReplicationExceedsDomains {
                replication: self.elastic.replication,
                domains,
            });
        }
        if let Err(reason) = self.ckpt.validate() {
            return Err(ConfigError::BadCkptEngine { reason });
        }
        for event in &self.stragglers {
            // The finiteness check also rejects NaN, which would slip
            // through a plain `factor < 1.0` comparison.
            if event.rank >= self.world_size()
                || !event.factor.is_finite()
                || event.factor < 1.0
                || event.duration == 0
            {
                return Err(ConfigError::BadStraggler {
                    rank: event.rank,
                    factor: event.factor,
                    duration: event.duration,
                });
            }
        }
        if self.detector.k_misses == 0 {
            return Err(ConfigError::ZeroDetectorMisses);
        }
        if self.retry.max_attempts == 0 {
            return Err(ConfigError::ZeroRetryAttempts);
        }
        self.chaos
            .validate(self.topology.nodes(), self.world_size(), &self.detector)?;
        if self.chaos.has_flap() && !(self.elastic.shrink && self.elastic.rejoin_after.is_some()) {
            return Err(ConfigError::FlapWithoutRejoin);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ParallelTopology {
        ParallelTopology::dp_ep(2, 4, 8, 8).unwrap()
    }

    #[test]
    fn tiny_config_is_valid() {
        let cfg = RuntimeConfig::tiny(topo());
        cfg.validate().unwrap();
        assert_eq!(cfg.world_size(), 8);
        assert_eq!(cfg.batch_per_rank(), 1);
    }

    #[test]
    fn baseline_disables_pec() {
        let cfg = RuntimeConfig::baseline(topo());
        cfg.validate().unwrap();
        assert_eq!(cfg.k_snapshot, cfg.model.num_experts());
        assert_eq!(cfg.checkpoint_mode, CheckpointMode::Sync);
        assert!(!cfg.two_level);
        assert_eq!(cfg.collective, CollectiveKind::Star);
    }

    #[test]
    fn tiny_defaults_to_ring_collective() {
        let cfg = RuntimeConfig::tiny(topo());
        assert_eq!(cfg.collective, CollectiveKind::Ring);
        assert!(cfg.ring_chunk > 0);
    }

    #[test]
    fn zero_ring_chunk_rejected() {
        let cfg = RuntimeConfig {
            ring_chunk: 0,
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroRingChunk));
    }

    #[test]
    fn bad_straggler_rejected() {
        let out_of_range = RuntimeConfig {
            stragglers: vec![SlowEvent::once(2, 99, 2.0)],
            ..RuntimeConfig::tiny(topo())
        };
        assert!(matches!(
            out_of_range.validate(),
            Err(ConfigError::BadStraggler { rank: 99, .. })
        ));
        let speedup = RuntimeConfig {
            stragglers: vec![SlowEvent::once(2, 0, 0.5)],
            ..RuntimeConfig::tiny(topo())
        };
        assert!(matches!(
            speedup.validate(),
            Err(ConfigError::BadStraggler { rank: 0, .. })
        ));
        let zero_duration = RuntimeConfig {
            stragglers: vec![SlowEvent::sustained(0, 2, 0, 2.0)],
            ..RuntimeConfig::tiny(topo())
        };
        assert!(matches!(
            zero_duration.validate(),
            Err(ConfigError::BadStraggler { rank: 0, .. })
        ));
        for bad in [f64::NAN, f64::INFINITY] {
            let cfg = RuntimeConfig {
                stragglers: vec![SlowEvent::once(2, 0, bad)],
                ..RuntimeConfig::tiny(topo())
            };
            assert!(
                matches!(cfg.validate(), Err(ConfigError::BadStraggler { .. })),
                "factor {bad} must be rejected"
            );
        }
    }

    #[test]
    fn unhostable_replication_rejected() {
        // topo(): 2 nodes -> 2 failure domains.
        for bad in [0usize, 3, 9] {
            let cfg = RuntimeConfig {
                elastic: ElasticConfig::shrink(bad),
                ..RuntimeConfig::tiny(topo())
            };
            assert_eq!(
                cfg.validate(),
                Err(ConfigError::ReplicationExceedsDomains {
                    replication: bad,
                    domains: 2
                }),
                "replication {bad} must be rejected"
            );
        }
        let ok = RuntimeConfig {
            elastic: ElasticConfig::shrink(2),
            ..RuntimeConfig::tiny(topo())
        };
        ok.validate().unwrap();
    }

    #[test]
    fn bad_ckpt_engine_rejected() {
        let cfg = RuntimeConfig {
            ckpt: EngineConfig {
                rebase_interval: 0,
                ..EngineConfig::default()
            },
            ..RuntimeConfig::tiny(topo())
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadCkptEngine { .. })
        ));
    }

    #[test]
    fn tiny_enables_delta_baseline_disables() {
        assert!(RuntimeConfig::tiny(topo()).ckpt.delta);
        assert!(!RuntimeConfig::baseline(topo()).ckpt.delta);
    }

    #[test]
    fn uneven_batch_rejected() {
        let cfg = RuntimeConfig {
            batch: 5,
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::BatchNotDivisible { batch: 5, dp: 8 })
        );
    }

    #[test]
    fn zero_interval_rejected() {
        let cfg = RuntimeConfig {
            i_ckpt: 0,
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroCheckpointInterval));
    }

    #[test]
    fn bad_pec_rejected() {
        let cfg = RuntimeConfig {
            k_snapshot: 99,
            ..RuntimeConfig::tiny(topo())
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadPecDegree { k: 99, .. })
        ));
    }

    #[test]
    fn persist_above_snapshot_rejected() {
        let cfg = RuntimeConfig {
            k_snapshot: 2,
            k_persist: 4,
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::PersistExceedsSnapshot {
                k_persist: 4,
                k_snapshot: 2
            })
        );
    }

    #[test]
    fn supported_tp_pp_shapes_accepted() {
        // tiny_lm_8e has 4 layers, so pp <= 4 and any small tp is fine.
        for (nodes, gpn, dp, tp, pp, ep) in
            [(2, 8, 4, 4, 1, 4), (2, 8, 4, 1, 4, 2), (2, 8, 2, 2, 4, 2)]
        {
            let topology = ParallelTopology::new(nodes, gpn, dp, tp, pp, ep).unwrap();
            let cfg = RuntimeConfig {
                batch: dp,
                ..RuntimeConfig::tiny(topology)
            };
            cfg.validate()
                .unwrap_or_else(|e| panic!("shape {topology} must validate: {e}"));
            assert_eq!(cfg.world_size(), dp * tp * pp);
            assert_eq!(cfg.batch_per_rank(), 1);
        }
    }

    #[test]
    fn starved_pipeline_stage_rejected() {
        // 8 pipeline stages over the tiny model's 4 layers: a stage would
        // own no layer.
        let cfg = RuntimeConfig {
            topology: ParallelTopology::new(2, 8, 2, 1, 8, 2).unwrap(),
            batch: 2,
            ..RuntimeConfig::tiny(topo())
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::UnsupportedParallelism { pp: 8, .. })
        ));
    }

    #[test]
    fn starved_tensor_slice_rejected() {
        let hidden = RuntimeConfig::tiny(topo()).model.hidden_size();
        let tp = hidden + 1;
        // Build a grid wide enough to hold the oversized tp degree.
        let cfg = RuntimeConfig {
            topology: ParallelTopology::new(1, 2 * tp, 2, tp, 1, 2).unwrap(),
            batch: 2,
            ..RuntimeConfig::tiny(topo())
        };
        match cfg.validate() {
            Err(ConfigError::UnsupportedParallelism {
                tp: got, reason, ..
            }) => {
                assert_eq!(got, tp);
                assert!(reason.contains("slice"), "reason: {reason}");
            }
            other => panic!("expected UnsupportedParallelism, got {other:?}"),
        }
    }

    #[test]
    fn zero_detector_misses_rejected() {
        let cfg = RuntimeConfig {
            detector: DetectorConfig {
                k_misses: 0,
                lease: None,
            },
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroDetectorMisses));
    }

    #[test]
    fn zero_retry_attempts_rejected() {
        let cfg = RuntimeConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroRetryAttempts));
    }

    #[test]
    fn flap_requires_elastic_rejoin() {
        use crate::faults::{ChaosEvent, FaultKind};
        let flap = ChaosPlan {
            events: vec![ChaosEvent {
                iteration: 2,
                kind: FaultKind::Flap { node: 0 },
            }],
            ..ChaosPlan::none()
        };
        let no_elastic = RuntimeConfig {
            chaos: flap.clone(),
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(no_elastic.validate(), Err(ConfigError::FlapWithoutRejoin));
        let shrink_no_rejoin = RuntimeConfig {
            chaos: flap.clone(),
            elastic: ElasticConfig::shrink(1),
            ..RuntimeConfig::tiny(topo())
        };
        assert_eq!(
            shrink_no_rejoin.validate(),
            Err(ConfigError::FlapWithoutRejoin)
        );
        let ok = RuntimeConfig {
            chaos: flap,
            elastic: ElasticConfig {
                shrink: true,
                replication: 1,
                rejoin_after: Some(2),
            },
            ..RuntimeConfig::tiny(topo())
        };
        ok.validate().unwrap();
    }

    #[test]
    fn chaos_events_validated_against_shape_and_detector() {
        use crate::faults::{ChaosEvent, FaultKind};
        let declared_dead = RuntimeConfig {
            chaos: ChaosPlan {
                events: vec![ChaosEvent {
                    iteration: 2,
                    kind: FaultKind::HeartbeatLoss { rank: 0, misses: 2 },
                }],
                ..ChaosPlan::none()
            },
            ..RuntimeConfig::tiny(topo())
        };
        // tiny() defaults to k_misses = 2, so a 2-window loss would be a
        // death, not a gray failure.
        assert!(matches!(
            declared_dead.validate(),
            Err(ConfigError::BadChaosEvent { .. })
        ));
        let out_of_range = RuntimeConfig {
            chaos: ChaosPlan {
                events: vec![ChaosEvent {
                    iteration: 2,
                    kind: FaultKind::MeshDrop { rank: 99 },
                }],
                ..ChaosPlan::none()
            },
            ..RuntimeConfig::tiny(topo())
        };
        assert!(matches!(
            out_of_range.validate(),
            Err(ConfigError::BadChaosEvent { .. })
        ));
    }

    #[test]
    fn straggler_rank_bound_is_the_global_world() {
        // dp = 2, tp = 2, pp = 2: global ranks 0..8 are all valid
        // straggler victims even though dp is only 2.
        let topology = ParallelTopology::new(1, 8, 2, 2, 2, 2).unwrap();
        let ok = RuntimeConfig {
            stragglers: vec![SlowEvent::once(2, 7, 2.0)],
            batch: 2,
            ..RuntimeConfig::tiny(topology)
        };
        ok.validate().unwrap();
        let bad = RuntimeConfig {
            stragglers: vec![SlowEvent::once(2, 8, 2.0)],
            batch: 2,
            ..RuntimeConfig::tiny(topology)
        };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::BadStraggler { rank: 8, .. })
        ));
    }
}
