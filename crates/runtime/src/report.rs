//! Run reports: the human-readable text dump and the schema'd JSON
//! emitters built on [`moc_obs::report`].
//!
//! A [`RunSummary`] knows how to render itself as the timeline + phase
//! table the `runtime_live` example prints ([`RunSummary::render_text`])
//! and how to emit its checkpoint-cost metrics as the machine-readable
//! object the figure benches persist across commits
//! ([`RunSummary::ckpt_report`]). Both go through `moc-obs` renderers so
//! every consumer shares one schema instead of hand-rolling JSON.

use crate::metrics::{EventKind, Phase, RunSummary};
use moc_obs::{render_phase_table, render_timeline, Json, PhaseRow, Report, TimelineRow};

/// Milliseconds with a unit, for the per-rank phase table.
fn ms(secs: f64) -> String {
    format!("{:.2} ms", 1e3 * secs)
}

/// The timeline label and free-form detail of one event, matching the
/// historical `runtime_live` rendering.
fn describe(kind: &EventKind) -> (String, String) {
    match kind {
        EventKind::Checkpoint {
            stalled_nodes,
            overhead_secs,
        } => {
            let stall = if stalled_nodes.is_empty() {
                String::new()
            } else {
                format!("  [stalled nodes {stalled_nodes:?}]")
            };
            (
                "checkpoint".into(),
                format!("{:.2} ms overhead{stall}", 1e3 * overhead_secs),
            )
        }
        EventKind::FaultInjected { nodes } => ("KILL".into(), format!("nodes {nodes:?}")),
        EventKind::FaultDetected { nodes, detect_secs } => (
            "detected".into(),
            format!("nodes {nodes:?} dead after {:.0} ms", 1e3 * detect_secs),
        ),
        EventKind::FaultSuspected { ranks, misses } => (
            "suspected".into(),
            format!("ranks {ranks:?} silent for {misses} window(s); lease granted"),
        ),
        EventKind::SuspicionCleared { rank } => (
            "cleared".into(),
            format!("rank {rank} replied within its lease; re-admitted"),
        ),
        EventKind::Recovery {
            resume_iteration,
            memory_hits,
            storage_hits,
            total_secs,
            shard_groups,
            ..
        } => (
            "RECOVERED".into(),
            format!(
                "resume at {resume_iteration} ({memory_hits} shards from memory, \
                 {storage_hits} from storage, shard groups {shard_groups:?}, {:.0} ms)",
                1e3 * total_secs
            ),
        ),
        EventKind::Eval { loss } => ("eval".into(), format!("val loss {loss:.4}")),
        EventKind::CollectiveAbort {
            aborted_ranks,
            fallback_iterations,
        } => (
            "RING ABORT".into(),
            format!(
                "ranks {aborted_ranks:?} bailed; star fallback for \
                 {fallback_iterations} iteration(s)"
            ),
        ),
        EventKind::StragglerInjected { rank, factor } => {
            ("SLOW".into(), format!("rank {rank} stretched {factor}x"))
        }
        EventKind::HealthDegraded { rank, z } => (
            "DEGRADED".into(),
            format!("rank {rank} health degraded (z {z:.1}); suspicion corroboration armed"),
        ),
        EventKind::ElasticShrink {
            dead_groups,
            adoptions,
            experts_migrated,
            shrink_secs,
        } => (
            "SHRINK".into(),
            format!(
                "groups {dead_groups:?} adopted as {adoptions:?}, \
                 {experts_migrated} experts migrated ({:.1} ms)",
                1e3 * shrink_secs
            ),
        ),
        EventKind::ElasticExpand {
            returning_groups,
            experts_returned,
            degraded_iterations,
            expand_secs,
        } => (
            "EXPAND".into(),
            format!(
                "groups {returning_groups:?} rejoined after {degraded_iterations} \
                 degraded iteration(s), {experts_returned} experts returned ({:.1} ms)",
                1e3 * expand_secs
            ),
        ),
    }
}

impl RunSummary {
    /// The run's timeline as renderable rows: run-relative timestamps,
    /// iteration numbers, and the historical event labels.
    pub fn timeline_rows(&self) -> Vec<TimelineRow> {
        self.timeline
            .iter()
            .map(|event| {
                let (label, detail) = describe(&event.kind);
                TimelineRow {
                    at_secs: event.at_secs,
                    iteration: event.iteration,
                    label,
                    detail,
                }
            })
            .collect()
    }

    /// Per-phase latency rows (count, mean, p50, p99, max, total) in
    /// [`Phase`] declaration order.
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        self.phases
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(phase, s)| PhaseRow {
                label: phase.label().to_string(),
                count: s.count,
                mean_secs: s.mean_secs(),
                p50_secs: s.p50_secs(),
                p99_secs: s.p99_secs(),
                max_secs: s.max_secs,
                total_secs: s.total_secs,
            })
            .collect()
    }

    /// Full text report: headline counters, the event timeline, and the
    /// per-phase latency table with log-histogram percentiles.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} iterations executed, {} checkpoints, {} faults, {} recoveries, \
             {} shrinks, {} expands\n",
            self.iterations_executed,
            self.checkpoints_taken,
            self.faults_injected,
            self.recoveries,
            self.elastic_shrinks,
            self.elastic_expands,
        ));
        if self.degraded_iterations > 0 || self.hierarchical_iterations > 0 {
            out.push_str(&format!(
                "{} degraded iteration(s) ({} on the survivor ring), \
                 {} hierarchical iteration(s)\n",
                self.degraded_iterations,
                self.survivor_ring_iterations,
                self.hierarchical_iterations,
            ));
        }
        out.push_str(&format!(
            "final val loss {:.4}  measured PLT {:.3}%  K trace {:?}\n",
            self.final_val_loss,
            100.0 * self.plt,
            self.k_trace,
        ));
        out.push_str(&format!(
            "recovered {:.1} KB ({} memory / {} storage shards), persisted {:.1} MB, \
             {} stalls\n",
            self.recovered_bytes as f64 / 1e3,
            self.memory_hits,
            self.storage_hits,
            self.persisted_bytes as f64 / 1e6,
            self.stall_count,
        ));
        out.push_str(&format!(
            "replicas bitwise consistent: {}  mean iteration {:.2} ms\n",
            self.replicas_consistent,
            1e3 * self.mean_iteration_secs(),
        ));
        if self.obs.enabled {
            out.push_str(&format!(
                "observability: {} spans recorded, {} flight dump(s)",
                self.obs.spans_recorded,
                self.obs.flight_dumps.len(),
            ));
            if let Some(path) = &self.obs.trace_path {
                out.push_str(&format!(", trace at {}", path.display()));
            }
            out.push('\n');
        }
        if let Some(telemetry) = &self.obs.telemetry {
            out.push_str(&format!(
                "telemetry: {} sample(s) at {:.0} ms interval",
                telemetry.samples.len(),
                1e3 * telemetry.interval.as_secs_f64(),
            ));
            if let Some(path) = &telemetry.json_path {
                out.push_str(&format!(", series at {}", path.display()));
            }
            out.push('\n');
        }
        if !self.obs.per_rank.is_empty() {
            out.push_str("\nper-rank phases:\n");
            out.push_str(&format!(
                "  {:<26} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "lane", "spans", "compute", "collect", "stall", "ckpt", "fault", "eval"
            ));
            for lane in &self.obs.per_rank {
                out.push_str(&format!(
                    "  {:<26} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    lane.label,
                    lane.spans,
                    ms(lane.compute_secs),
                    ms(lane.collective_secs),
                    ms(lane.stall_secs),
                    ms(lane.ckpt_secs),
                    ms(lane.fault_secs),
                    ms(lane.eval_secs),
                ));
            }
        }
        if let Some(health) = &self.health {
            out.push_str("\nrank health:\n");
            out.push_str(&format!(
                "  {:<6} {:<10} {:>8} {:>12} {:>8} {:>8} {:>12}\n",
                "rank", "state", "samples", "ewma step", "last z", "worst z", "transitions"
            ));
            for row in &health.rows {
                out.push_str(&format!(
                    "  {:<6} {:<10} {:>8} {:>12} {:>8.1} {:>8.1} {:>12}\n",
                    row.rank,
                    row.state.label(),
                    row.samples,
                    ms(row.ewma_step_secs),
                    row.last_z,
                    row.worst_z,
                    row.transitions,
                ));
            }
        }
        if let Some(audit) = &self.obs.audit {
            out.push_str(&format!("\n{}", audit.render_text()));
            if let Some(path) = &self.obs.audit_path {
                out.push_str(&format!("  audit report at {}\n", path.display()));
            }
        }
        if let Some(blame) = &self.obs.blame {
            out.push_str("\ncritical path:\n");
            out.push_str(&blame.render_text());
            if let Some(path) = &self.obs.blame_path {
                out.push_str(&format!("  blame report at {}\n", path.display()));
            }
        }
        if !self.timeline.is_empty() {
            out.push_str("\ntimeline:\n");
            out.push_str(&render_timeline(&self.timeline_rows()));
        }
        out.push_str("\nphases:\n");
        out.push_str(&render_phase_table(&self.phase_rows()));
        out
    }

    /// The run's checkpoint-cost metrics as a schema'd JSON object — the
    /// per-mode entry persisted by the checkpoint-overhead bench.
    pub fn ckpt_report(&self) -> Json {
        Report::new()
            .field("ckpt_overhead_secs", self.checkpoint_overhead_secs())
            .field("mean_iteration_secs", self.mean_iteration_secs())
            .field("persisted_bytes", self.persisted_bytes)
            .field("raw_bytes", self.ckpt_engine.writer.raw_bytes)
            .field("stored_bytes", self.ckpt_engine.writer.stored_bytes)
            .field("manifest_bytes", self.ckpt_engine.writer.manifest_bytes)
            .field("full_shards", self.ckpt_engine.writer.full_shards)
            .field("delta_shards", self.ckpt_engine.writer.delta_shards)
            .field("pool_allocs", self.ckpt_engine.pool_allocs)
            .field("stall_count", self.stall_count)
            .field("blocking_write_phases", self.phase(Phase::CkptWrite).count)
            .json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TimelineEvent;

    fn summary_with_events() -> RunSummary {
        let mut s = RunSummary::default();
        s.timeline.push(TimelineEvent {
            at_secs: 0.25,
            iteration: 4,
            kind: EventKind::Checkpoint {
                stalled_nodes: vec![],
                overhead_secs: 0.001,
            },
        });
        s.timeline.push(TimelineEvent {
            at_secs: 0.5,
            iteration: 7,
            kind: EventKind::FaultInjected { nodes: vec![1] },
        });
        let mut stats = crate::metrics::PhaseStats::default();
        stats.record(0.002);
        stats.record(0.004);
        s.phases.insert(Phase::Compute, stats);
        s
    }

    #[test]
    fn text_report_carries_timeline_and_phases() {
        let text = summary_with_events().render_text();
        assert!(text.contains("KILL"), "{text}");
        assert!(text.contains("checkpoint"), "{text}");
        assert!(text.contains("compute"), "{text}");
        assert!(text.contains("iter    7"), "{text}");
    }

    #[test]
    fn text_report_renders_per_rank_phase_table() {
        let mut s = summary_with_events();
        s.obs.per_rank.push(moc_obs::RankPhases {
            pid: 0,
            tid: 0,
            label: "node0/rank 0".into(),
            spans: 5,
            compute_secs: 0.01,
            collective_secs: 0.002,
            stall_secs: 0.0,
            ckpt_secs: 0.001,
            fault_secs: 0.0,
            eval_secs: 0.0,
        });
        let text = s.render_text();
        assert!(text.contains("per-rank phases"), "{text}");
        assert!(text.contains("node0/rank 0"), "{text}");
        assert!(text.contains("10.00 ms"), "{text}");
    }

    #[test]
    fn text_report_renders_health_table_and_degraded_events() {
        let mut s = summary_with_events();
        s.timeline.push(TimelineEvent {
            at_secs: 0.6,
            iteration: 5,
            kind: EventKind::HealthDegraded { rank: 2, z: 41.5 },
        });
        s.health = Some(moc_obs::HealthReport {
            rows: vec![moc_obs::HealthRow {
                rank: 2,
                state: moc_obs::HealthState::Degraded,
                samples: 9,
                ewma_step_secs: 0.012,
                last_z: 41.5,
                worst_z: 44.0,
                transitions: 1,
            }],
            transitions: vec![],
        });
        let text = s.render_text();
        assert!(text.contains("rank health"), "{text}");
        assert!(text.contains("degraded"), "{text}");
        assert!(text.contains("DEGRADED"), "{text}");
        assert!(text.contains("41.5"), "{text}");
    }

    #[test]
    fn ckpt_report_has_the_bench_schema() {
        let json = summary_with_events().ckpt_report();
        for key in [
            "ckpt_overhead_secs",
            "mean_iteration_secs",
            "persisted_bytes",
            "raw_bytes",
            "stored_bytes",
            "manifest_bytes",
            "full_shards",
            "delta_shards",
            "pool_allocs",
            "stall_count",
            "blocking_write_phases",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
    }
}
