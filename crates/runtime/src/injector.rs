//! Fault and straggler injection on a schedule.
//!
//! The injector materialises a fault plan into a per-iteration kill map
//! and a straggler schedule into a per-iteration slowdown map. At the
//! start of each iteration the coordinator asks
//! [`FaultInjector::kills_at`] and [`FaultInjector::slows_at`]:
//!
//! * kill victims' rank threads are told to die mid-iteration (after
//!   computing, before reporting), their node's CPU memory is wiped, and
//!   the coordinator is left to *detect* the failure through missing
//!   heartbeat replies — the injector never shortcuts detection;
//! * straggler victims stretch their step by the configured factor
//!   (simulating a slow node) and report the induced stall, which the
//!   coordinator records so checkpoint stall amplification is
//!   measurable against `moc_cluster::events`.

use crate::faults::{ChaosPlan, MeshChaos};
use moc_store::{FaultEvent, FaultPlan};
use std::collections::BTreeMap;

/// One scheduled slow-rank (straggler) degradation profile: from
/// iteration `start`, `rank`'s steps take `factor` times their normal
/// duration for `duration` consecutive iterations — modelling both a
/// one-off hiccup (`duration = 1`) and sustained degradation (a
/// thermally throttled GPU, a congested NIC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowEvent {
    /// Rank slowed down.
    pub rank: usize,
    /// First iteration the slowdown strikes.
    pub start: u64,
    /// Consecutive iterations the degradation lasts (`>= 1`).
    pub duration: u64,
    /// Step-duration multiplier (`>= 1.0`); the induced stall per
    /// iteration is `(factor - 1) ×` the measured compute time.
    pub factor: f64,
}

impl SlowEvent {
    /// A one-iteration slowdown (the pre-profile behaviour).
    pub fn once(iteration: u64, rank: usize, factor: f64) -> Self {
        Self {
            rank,
            start: iteration,
            duration: 1,
            factor,
        }
    }

    /// A sustained degradation profile.
    pub fn sustained(rank: usize, start: u64, duration: u64, factor: f64) -> Self {
        Self {
            rank,
            start,
            duration,
            factor,
        }
    }
}

/// Materialised fault + straggler + chaos schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    by_iteration: BTreeMap<u64, Vec<usize>>,
    slow_by_iteration: BTreeMap<u64, Vec<(usize, f64)>>,
    report_delay_by_iteration: BTreeMap<u64, Vec<(usize, u32)>>,
    mesh_by_iteration: BTreeMap<u64, Vec<(usize, MeshChaos)>>,
    injected: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Materialises `plan`, `stragglers`, and the FaultPlan v2 `chaos`
    /// schedule over `0..=horizon` iterations for a cluster of
    /// `num_nodes` nodes running `world` ranks. The chaos plan's kills,
    /// flaps, and stragglers merge into the same maps as the v1
    /// schedules; its heartbeat losses and mesh events get their own
    /// fire-once maps. Events scheduled before the first iteration are
    /// shifted to iteration 1 (a node cannot die before training
    /// starts).
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside the cluster, or a
    /// straggler names a rank outside the world or a factor below 1.
    /// (Chaos plans are validated earlier by
    /// [`crate::RuntimeConfig::validate`].)
    pub fn new(
        plan: &FaultPlan,
        stragglers: &[SlowEvent],
        chaos: &ChaosPlan,
        horizon: u64,
        num_nodes: usize,
        world: usize,
    ) -> Self {
        let mut by_iteration: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let chaos_kills = chaos.kills();
        let chaos_stragglers = chaos.stragglers();
        let stragglers: Vec<SlowEvent> = stragglers
            .iter()
            .chain(chaos_stragglers.iter())
            .copied()
            .collect();
        for event in plan.events(horizon + 1).into_iter().chain(chaos_kills) {
            assert!(
                event.node < num_nodes,
                "fault plan names node {} outside cluster of {num_nodes}",
                event.node
            );
            let it = event.iteration.max(1);
            let victims = by_iteration.entry(it).or_default();
            if !victims.contains(&event.node) {
                victims.push(event.node);
            }
        }
        let mut slow_by_iteration: BTreeMap<u64, Vec<(usize, f64)>> = BTreeMap::new();
        for event in &stragglers {
            assert!(
                event.rank < world,
                "straggler names rank {} outside world of {world}",
                event.rank
            );
            assert!(
                event.factor >= 1.0,
                "straggler factor {} would be a speed-up",
                event.factor
            );
            assert!(
                event.duration >= 1,
                "straggler profile must last at least one iteration"
            );
            // A profile scheduled before the first iteration shifts whole
            // (a rank cannot straggle before training starts) so its
            // duration is preserved instead of collapsing onto iteration 1.
            let start = event.start.max(1);
            let end = start.saturating_add(event.duration);
            for it in start..end {
                if it > horizon {
                    break;
                }
                let victims = slow_by_iteration.entry(it).or_default();
                // Overlapping profiles on one rank keep the worst factor.
                match victims.iter_mut().find(|(r, _)| *r == event.rank) {
                    Some((_, f)) => *f = f.max(event.factor),
                    None => victims.push((event.rank, event.factor)),
                }
            }
        }
        let mut report_delay_by_iteration: BTreeMap<u64, Vec<(usize, u32)>> = BTreeMap::new();
        for (it, rank, misses) in chaos.heartbeat_losses() {
            if it > horizon {
                continue;
            }
            let victims = report_delay_by_iteration.entry(it).or_default();
            // Overlapping losses on one rank keep the worst miss count.
            match victims.iter_mut().find(|(r, _)| *r == rank) {
                Some((_, m)) => *m = (*m).max(misses),
                None => victims.push((rank, misses)),
            }
        }
        let mut mesh_by_iteration: BTreeMap<u64, Vec<(usize, MeshChaos)>> = BTreeMap::new();
        for (it, rank, mesh) in chaos.mesh_events() {
            if it > horizon {
                continue;
            }
            // mesh_events() already merged per (iteration, rank).
            mesh_by_iteration.entry(it).or_default().push((rank, mesh));
        }
        Self {
            by_iteration,
            slow_by_iteration,
            report_delay_by_iteration,
            mesh_by_iteration,
            injected: Vec::new(),
        }
    }

    /// Nodes to kill at the start of `iteration` (empty most of the time).
    /// Recording is idempotent per iteration: re-executed iterations after
    /// a rollback do not re-kill (a node only dies once per scheduled
    /// event, matching how the analytic harness replays faults).
    pub fn kills_at(&mut self, iteration: u64) -> Vec<usize> {
        match self.by_iteration.remove(&iteration) {
            Some(nodes) => {
                for &node in &nodes {
                    self.injected.push(FaultEvent { iteration, node });
                }
                nodes
            }
            None => Vec::new(),
        }
    }

    /// `(rank, factor)` slowdowns striking at `iteration`. Like kills,
    /// each scheduled straggler fires once: re-executed iterations after
    /// a rollback are not re-slowed.
    pub fn slows_at(&mut self, iteration: u64) -> Vec<(usize, f64)> {
        self.slow_by_iteration
            .remove(&iteration)
            .unwrap_or_default()
    }

    /// `(rank, misses)` heartbeat losses striking at `iteration`: the
    /// rank's step report is delayed past `misses` collect windows.
    /// Fire-once, like kills: a rolled-back iteration is not re-grayed.
    pub fn report_delays_at(&mut self, iteration: u64) -> Vec<(usize, u32)> {
        self.report_delay_by_iteration
            .remove(&iteration)
            .unwrap_or_default()
    }

    /// `(rank, chaos)` mesh-channel directives striking at `iteration`.
    /// Fire-once: the rollback that a mesh drop triggers re-executes the
    /// iteration cleanly.
    pub fn mesh_chaos_at(&mut self, iteration: u64) -> Vec<(usize, MeshChaos)> {
        self.mesh_by_iteration
            .remove(&iteration)
            .unwrap_or_default()
    }

    /// Chaos events (heartbeat losses + mesh directives) still pending.
    pub fn pending_chaos(&self) -> usize {
        self.report_delay_by_iteration
            .values()
            .map(Vec::len)
            .sum::<usize>()
            + self.mesh_by_iteration.values().map(Vec::len).sum::<usize>()
    }

    /// Faults injected so far, in order.
    pub fn injected(&self) -> &[FaultEvent] {
        &self.injected
    }

    /// Faults still pending.
    pub fn pending(&self) -> usize {
        self.by_iteration.values().map(Vec::len).sum()
    }

    /// Straggler events still pending.
    pub fn pending_stragglers(&self) -> usize {
        self.slow_by_iteration.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(plan: &FaultPlan, horizon: u64, num_nodes: usize) -> FaultInjector {
        FaultInjector::new(plan, &[], &ChaosPlan::none(), horizon, num_nodes, 8)
    }

    fn slowed(slow: &[SlowEvent], horizon: u64) -> FaultInjector {
        FaultInjector::new(&FaultPlan::None, slow, &ChaosPlan::none(), horizon, 2, 4)
    }

    fn chaotic(chaos: &ChaosPlan, horizon: u64) -> FaultInjector {
        FaultInjector::new(&FaultPlan::None, &[], chaos, horizon, 2, 4)
    }

    #[test]
    fn explicit_plan_fires_once() {
        let plan = FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 1,
            },
            FaultEvent {
                iteration: 9,
                node: 0,
            },
        ]);
        let mut inj = plain(&plan, 20, 2);
        assert_eq!(inj.pending(), 2);
        assert!(inj.kills_at(4).is_empty());
        assert_eq!(inj.kills_at(5), vec![1]);
        // Re-executing iteration 5 after a rollback does not re-kill.
        assert!(inj.kills_at(5).is_empty());
        assert_eq!(inj.kills_at(9), vec![0]);
        assert_eq!(inj.injected().len(), 2);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn iteration_zero_shifts_to_one() {
        let plan = FaultPlan::At(vec![FaultEvent {
            iteration: 0,
            node: 0,
        }]);
        let mut inj = plain(&plan, 10, 1);
        assert_eq!(inj.kills_at(1), vec![0]);
    }

    #[test]
    fn duplicate_victims_deduplicated() {
        let plan = FaultPlan::At(vec![
            FaultEvent {
                iteration: 3,
                node: 0,
            },
            FaultEvent {
                iteration: 3,
                node: 0,
            },
            FaultEvent {
                iteration: 3,
                node: 1,
            },
        ]);
        let mut inj = plain(&plan, 10, 2);
        assert_eq!(inj.kills_at(3), vec![0, 1]);
    }

    #[test]
    fn poisson_plan_materialises_deterministically() {
        let plan = FaultPlan::Poisson {
            rate: 0.05,
            num_nodes: 2,
            seed: 9,
        };
        let a = plain(&plan, 100, 2);
        let b = plain(&plan, 100, 2);
        assert_eq!(a.pending(), b.pending());
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn out_of_range_node_panics() {
        let plan = FaultPlan::At(vec![FaultEvent {
            iteration: 1,
            node: 5,
        }]);
        plain(&plan, 10, 2);
    }

    #[test]
    fn stragglers_fire_once_and_dedupe() {
        let slow = [
            SlowEvent::once(4, 2, 3.0),
            SlowEvent::once(4, 2, 5.0),
            SlowEvent::once(0, 1, 2.0),
            SlowEvent::once(99, 0, 2.0),
        ];
        let mut inj = slowed(&slow, 10);
        // The event beyond the horizon is dropped.
        assert_eq!(inj.pending_stragglers(), 2);
        assert_eq!(inj.slows_at(1), vec![(1, 2.0)]);
        // Overlapping events on one rank keep the worst factor.
        assert_eq!(inj.slows_at(4), vec![(2, 5.0)]);
        assert!(inj.slows_at(4).is_empty(), "stragglers fire once");
        assert_eq!(inj.pending_stragglers(), 0);
    }

    #[test]
    fn sustained_profile_covers_every_iteration() {
        let slow = [SlowEvent::sustained(1, 3, 4, 2.5)];
        let mut inj = slowed(&slow, 20);
        assert_eq!(inj.pending_stragglers(), 4);
        assert!(inj.slows_at(2).is_empty());
        for it in 3..7u64 {
            assert_eq!(inj.slows_at(it), vec![(1, 2.5)], "iteration {it}");
        }
        assert!(inj.slows_at(7).is_empty(), "profile ends after duration");
    }

    #[test]
    fn profile_starting_at_zero_keeps_its_duration() {
        let slow = [SlowEvent::sustained(0, 0, 3, 2.0)];
        let mut inj = slowed(&slow, 20);
        assert_eq!(inj.pending_stragglers(), 3, "shifted, not collapsed");
        for it in 1..4u64 {
            assert_eq!(inj.slows_at(it), vec![(0, 2.0)], "iteration {it}");
        }
        assert!(inj.slows_at(4).is_empty());
    }

    #[test]
    fn sustained_profile_truncates_at_horizon() {
        let slow = [SlowEvent::sustained(0, 8, 100, 2.0)];
        let mut inj = slowed(&slow, 10);
        assert_eq!(inj.pending_stragglers(), 3, "8, 9, 10 only");
        assert_eq!(inj.slows_at(10), vec![(0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "outside world")]
    fn out_of_range_straggler_rank_panics() {
        let slow = [SlowEvent::once(1, 9, 2.0)];
        slowed(&slow, 10);
    }

    #[test]
    #[should_panic(expected = "speed-up")]
    fn sub_unit_factor_panics() {
        let slow = [SlowEvent::once(1, 0, 0.25)];
        slowed(&slow, 10);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_duration_panics() {
        let slow = [SlowEvent::sustained(0, 1, 0, 2.0)];
        slowed(&slow, 10);
    }

    #[test]
    fn chaos_kills_flaps_and_stragglers_merge_into_v1_maps() {
        use crate::faults::{ChaosEvent, FaultKind};
        let chaos = ChaosPlan {
            events: vec![
                ChaosEvent {
                    iteration: 3,
                    kind: FaultKind::Kill { node: 0 },
                },
                ChaosEvent {
                    iteration: 5,
                    kind: FaultKind::Flap { node: 1 },
                },
                ChaosEvent {
                    iteration: 2,
                    kind: FaultKind::Straggler {
                        rank: 1,
                        duration: 1,
                        factor: 2.0,
                    },
                },
            ],
            ..ChaosPlan::none()
        };
        let mut inj = chaotic(&chaos, 10);
        assert_eq!(inj.pending(), 2, "kill + flap both land in the kill map");
        assert_eq!(inj.kills_at(3), vec![0]);
        assert_eq!(inj.kills_at(5), vec![1]);
        assert_eq!(inj.slows_at(2), vec![(1, 2.0)]);
    }

    #[test]
    fn report_delays_fire_once_and_keep_worst_miss_count() {
        use crate::faults::{ChaosEvent, FaultKind};
        let chaos = ChaosPlan {
            events: vec![
                ChaosEvent {
                    iteration: 4,
                    kind: FaultKind::HeartbeatLoss { rank: 2, misses: 1 },
                },
                ChaosEvent {
                    iteration: 4,
                    kind: FaultKind::HeartbeatLoss { rank: 2, misses: 2 },
                },
                ChaosEvent {
                    iteration: 99,
                    kind: FaultKind::HeartbeatLoss { rank: 0, misses: 1 },
                },
            ],
            ..ChaosPlan::none()
        };
        let mut inj = chaotic(&chaos, 10);
        assert_eq!(inj.pending_chaos(), 1, "beyond-horizon loss dropped");
        assert_eq!(inj.report_delays_at(4), vec![(2, 2)]);
        assert!(inj.report_delays_at(4).is_empty(), "fire once");
        assert_eq!(inj.pending_chaos(), 0);
    }

    #[test]
    fn mesh_chaos_fires_once_per_iteration() {
        use crate::faults::{ChaosEvent, FaultKind};
        let chaos = ChaosPlan {
            events: vec![
                ChaosEvent {
                    iteration: 6,
                    kind: FaultKind::MeshDelay {
                        rank: 1,
                        window_fraction: 0.5,
                    },
                },
                ChaosEvent {
                    iteration: 6,
                    kind: FaultKind::MeshDrop { rank: 3 },
                },
            ],
            ..ChaosPlan::none()
        };
        let mut inj = chaotic(&chaos, 10);
        let got = inj.mesh_chaos_at(6);
        assert_eq!(got.len(), 2);
        assert!(got.iter().any(|(r, m)| *r == 1 && m.window_fraction == 0.5));
        assert!(got.iter().any(|(r, m)| *r == 3 && m.drop));
        assert!(inj.mesh_chaos_at(6).is_empty(), "fire once");
    }
}
