//! Fault and straggler injection on a schedule.
//!
//! The injector materialises a fault plan into a per-iteration kill map
//! and a straggler schedule into a per-iteration slowdown map. At the
//! start of each iteration the coordinator asks
//! [`FaultInjector::kills_at`] and [`FaultInjector::slows_at`]:
//!
//! * kill victims' rank threads are told to die mid-iteration (after
//!   computing, before reporting), their node's CPU memory is wiped, and
//!   the coordinator is left to *detect* the failure through missing
//!   heartbeat replies — the injector never shortcuts detection;
//! * straggler victims stretch their step by the configured factor
//!   (simulating a slow node) and report the induced stall, which the
//!   coordinator records so checkpoint stall amplification is
//!   measurable against `moc_cluster::events`.

use moc_store::{FaultEvent, FaultPlan};
use std::collections::BTreeMap;

/// One scheduled slow-rank (straggler) event: at `iteration`, `rank`'s
/// step takes `factor` times its normal duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowEvent {
    /// Iteration the slowdown strikes.
    pub iteration: u64,
    /// Rank slowed down.
    pub rank: usize,
    /// Step-duration multiplier (`>= 1.0`); the induced stall is
    /// `(factor - 1) ×` the measured compute time.
    pub factor: f64,
}

/// Materialised fault + straggler schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    by_iteration: BTreeMap<u64, Vec<usize>>,
    slow_by_iteration: BTreeMap<u64, Vec<(usize, f64)>>,
    injected: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Materialises `plan` and `stragglers` over `0..=horizon` iterations
    /// for a cluster of `num_nodes` nodes running `world` ranks. Events
    /// scheduled before the first iteration are shifted to iteration 1 (a
    /// node cannot die before training starts).
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside the cluster, or a
    /// straggler names a rank outside the world or a factor below 1.
    pub fn new(
        plan: &FaultPlan,
        stragglers: &[SlowEvent],
        horizon: u64,
        num_nodes: usize,
        world: usize,
    ) -> Self {
        let mut by_iteration: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for event in plan.events(horizon + 1) {
            assert!(
                event.node < num_nodes,
                "fault plan names node {} outside cluster of {num_nodes}",
                event.node
            );
            let it = event.iteration.max(1);
            let victims = by_iteration.entry(it).or_default();
            if !victims.contains(&event.node) {
                victims.push(event.node);
            }
        }
        let mut slow_by_iteration: BTreeMap<u64, Vec<(usize, f64)>> = BTreeMap::new();
        for event in stragglers {
            assert!(
                event.rank < world,
                "straggler names rank {} outside world of {world}",
                event.rank
            );
            assert!(
                event.factor >= 1.0,
                "straggler factor {} would be a speed-up",
                event.factor
            );
            if event.iteration > horizon {
                continue;
            }
            let it = event.iteration.max(1);
            let victims = slow_by_iteration.entry(it).or_default();
            if !victims.iter().any(|&(r, _)| r == event.rank) {
                victims.push((event.rank, event.factor));
            }
        }
        Self {
            by_iteration,
            slow_by_iteration,
            injected: Vec::new(),
        }
    }

    /// Nodes to kill at the start of `iteration` (empty most of the time).
    /// Recording is idempotent per iteration: re-executed iterations after
    /// a rollback do not re-kill (a node only dies once per scheduled
    /// event, matching how the analytic harness replays faults).
    pub fn kills_at(&mut self, iteration: u64) -> Vec<usize> {
        match self.by_iteration.remove(&iteration) {
            Some(nodes) => {
                for &node in &nodes {
                    self.injected.push(FaultEvent { iteration, node });
                }
                nodes
            }
            None => Vec::new(),
        }
    }

    /// `(rank, factor)` slowdowns striking at `iteration`. Like kills,
    /// each scheduled straggler fires once: re-executed iterations after
    /// a rollback are not re-slowed.
    pub fn slows_at(&mut self, iteration: u64) -> Vec<(usize, f64)> {
        self.slow_by_iteration
            .remove(&iteration)
            .unwrap_or_default()
    }

    /// Faults injected so far, in order.
    pub fn injected(&self) -> &[FaultEvent] {
        &self.injected
    }

    /// Faults still pending.
    pub fn pending(&self) -> usize {
        self.by_iteration.values().map(Vec::len).sum()
    }

    /// Straggler events still pending.
    pub fn pending_stragglers(&self) -> usize {
        self.slow_by_iteration.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(plan: &FaultPlan, horizon: u64, num_nodes: usize) -> FaultInjector {
        FaultInjector::new(plan, &[], horizon, num_nodes, 8)
    }

    #[test]
    fn explicit_plan_fires_once() {
        let plan = FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 1,
            },
            FaultEvent {
                iteration: 9,
                node: 0,
            },
        ]);
        let mut inj = plain(&plan, 20, 2);
        assert_eq!(inj.pending(), 2);
        assert!(inj.kills_at(4).is_empty());
        assert_eq!(inj.kills_at(5), vec![1]);
        // Re-executing iteration 5 after a rollback does not re-kill.
        assert!(inj.kills_at(5).is_empty());
        assert_eq!(inj.kills_at(9), vec![0]);
        assert_eq!(inj.injected().len(), 2);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn iteration_zero_shifts_to_one() {
        let plan = FaultPlan::At(vec![FaultEvent {
            iteration: 0,
            node: 0,
        }]);
        let mut inj = plain(&plan, 10, 1);
        assert_eq!(inj.kills_at(1), vec![0]);
    }

    #[test]
    fn duplicate_victims_deduplicated() {
        let plan = FaultPlan::At(vec![
            FaultEvent {
                iteration: 3,
                node: 0,
            },
            FaultEvent {
                iteration: 3,
                node: 0,
            },
            FaultEvent {
                iteration: 3,
                node: 1,
            },
        ]);
        let mut inj = plain(&plan, 10, 2);
        assert_eq!(inj.kills_at(3), vec![0, 1]);
    }

    #[test]
    fn poisson_plan_materialises_deterministically() {
        let plan = FaultPlan::Poisson {
            rate: 0.05,
            num_nodes: 2,
            seed: 9,
        };
        let a = plain(&plan, 100, 2);
        let b = plain(&plan, 100, 2);
        assert_eq!(a.pending(), b.pending());
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn out_of_range_node_panics() {
        let plan = FaultPlan::At(vec![FaultEvent {
            iteration: 1,
            node: 5,
        }]);
        plain(&plan, 10, 2);
    }

    #[test]
    fn stragglers_fire_once_and_dedupe() {
        let slow = [
            SlowEvent {
                iteration: 4,
                rank: 2,
                factor: 3.0,
            },
            SlowEvent {
                iteration: 4,
                rank: 2,
                factor: 5.0,
            },
            SlowEvent {
                iteration: 0,
                rank: 1,
                factor: 2.0,
            },
            SlowEvent {
                iteration: 99,
                rank: 0,
                factor: 2.0,
            },
        ];
        let mut inj = FaultInjector::new(&FaultPlan::None, &slow, 10, 2, 4);
        // The event beyond the horizon is dropped.
        assert_eq!(inj.pending_stragglers(), 2);
        assert_eq!(inj.slows_at(1), vec![(1, 2.0)]);
        assert_eq!(inj.slows_at(4), vec![(2, 3.0)]);
        assert!(inj.slows_at(4).is_empty(), "stragglers fire once");
        assert_eq!(inj.pending_stragglers(), 0);
    }

    #[test]
    #[should_panic(expected = "outside world")]
    fn out_of_range_straggler_rank_panics() {
        let slow = [SlowEvent {
            iteration: 1,
            rank: 9,
            factor: 2.0,
        }];
        FaultInjector::new(&FaultPlan::None, &slow, 10, 2, 4);
    }

    #[test]
    #[should_panic(expected = "speed-up")]
    fn sub_unit_factor_panics() {
        let slow = [SlowEvent {
            iteration: 1,
            rank: 0,
            factor: 0.25,
        }];
        FaultInjector::new(&FaultPlan::None, &slow, 10, 2, 4);
    }
}
