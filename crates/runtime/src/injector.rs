//! Fault injection on a [`FaultPlan`] schedule.
//!
//! The injector materialises a fault plan into a per-iteration kill map.
//! At the start of each iteration the coordinator asks
//! [`FaultInjector::kills_at`]; the victims' rank threads are told to die
//! mid-iteration (after computing, before reporting), their node's CPU
//! memory is wiped, and the coordinator is left to *detect* the failure
//! through missing heartbeat replies — the injector never shortcuts
//! detection.

use moc_store::{FaultEvent, FaultPlan};
use std::collections::BTreeMap;

/// Materialised fault schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    by_iteration: BTreeMap<u64, Vec<usize>>,
    injected: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Materialises `plan` over `0..=horizon` iterations for a cluster of
    /// `num_nodes` nodes. Events scheduled before the first iteration are
    /// shifted to iteration 1 (a node cannot die before training starts).
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside the cluster.
    pub fn new(plan: &FaultPlan, horizon: u64, num_nodes: usize) -> Self {
        let mut by_iteration: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for event in plan.events(horizon + 1) {
            assert!(
                event.node < num_nodes,
                "fault plan names node {} outside cluster of {num_nodes}",
                event.node
            );
            let it = event.iteration.max(1);
            let victims = by_iteration.entry(it).or_default();
            if !victims.contains(&event.node) {
                victims.push(event.node);
            }
        }
        Self {
            by_iteration,
            injected: Vec::new(),
        }
    }

    /// Nodes to kill at the start of `iteration` (empty most of the time).
    /// Recording is idempotent per iteration: re-executed iterations after
    /// a rollback do not re-kill (a node only dies once per scheduled
    /// event, matching how the analytic harness replays faults).
    pub fn kills_at(&mut self, iteration: u64) -> Vec<usize> {
        match self.by_iteration.remove(&iteration) {
            Some(nodes) => {
                for &node in &nodes {
                    self.injected.push(FaultEvent { iteration, node });
                }
                nodes
            }
            None => Vec::new(),
        }
    }

    /// Faults injected so far, in order.
    pub fn injected(&self) -> &[FaultEvent] {
        &self.injected
    }

    /// Faults still pending.
    pub fn pending(&self) -> usize {
        self.by_iteration.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_plan_fires_once() {
        let plan = FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 1,
            },
            FaultEvent {
                iteration: 9,
                node: 0,
            },
        ]);
        let mut inj = FaultInjector::new(&plan, 20, 2);
        assert_eq!(inj.pending(), 2);
        assert!(inj.kills_at(4).is_empty());
        assert_eq!(inj.kills_at(5), vec![1]);
        // Re-executing iteration 5 after a rollback does not re-kill.
        assert!(inj.kills_at(5).is_empty());
        assert_eq!(inj.kills_at(9), vec![0]);
        assert_eq!(inj.injected().len(), 2);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn iteration_zero_shifts_to_one() {
        let plan = FaultPlan::At(vec![FaultEvent {
            iteration: 0,
            node: 0,
        }]);
        let mut inj = FaultInjector::new(&plan, 10, 1);
        assert_eq!(inj.kills_at(1), vec![0]);
    }

    #[test]
    fn duplicate_victims_deduplicated() {
        let plan = FaultPlan::At(vec![
            FaultEvent {
                iteration: 3,
                node: 0,
            },
            FaultEvent {
                iteration: 3,
                node: 0,
            },
            FaultEvent {
                iteration: 3,
                node: 1,
            },
        ]);
        let mut inj = FaultInjector::new(&plan, 10, 2);
        assert_eq!(inj.kills_at(3), vec![0, 1]);
    }

    #[test]
    fn poisson_plan_materialises_deterministically() {
        let plan = FaultPlan::Poisson {
            rate: 0.05,
            num_nodes: 2,
            seed: 9,
        };
        let a = FaultInjector::new(&plan, 100, 2);
        let b = FaultInjector::new(&plan, 100, 2);
        assert_eq!(a.pending(), b.pending());
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn out_of_range_node_panics() {
        let plan = FaultPlan::At(vec![FaultEvent {
            iteration: 1,
            node: 5,
        }]);
        FaultInjector::new(&plan, 10, 2);
    }
}
