//! Property tests of the group structure the runtime builds its
//! collectives on: for arbitrary valid `(dp, tp, pp, ep)` grids, the DP
//! gradient groups, TP rings, PP chains and shard groups each partition
//! the global rank space exactly, group sizes multiply back to the
//! world, and the coordinate mapping round-trips.

use moc_core::topology::ParallelTopology;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Materializes an arbitrary valid topology from raw draws: `ep` is
/// picked among the divisors of `dp`, and the node count among the
/// divisors of the world, so every generated shape constructs.
fn topology(dp: usize, tp: usize, pp: usize, ep_pick: usize, node_pick: usize) -> ParallelTopology {
    let divisors: Vec<usize> = (1..=dp).filter(|e| dp.is_multiple_of(*e)).collect();
    let ep = divisors[ep_pick % divisors.len()];
    let world = dp * tp * pp;
    let node_counts: Vec<usize> = (1..=world).filter(|n| world.is_multiple_of(*n)).collect();
    let nodes = node_counts[node_pick % node_counts.len()];
    ParallelTopology::new(nodes, world / nodes, dp, tp, pp, ep).expect("constructed shape is valid")
}

/// Checks that `groups` partitions `0..world`: every rank in exactly one
/// group, all groups the stated size.
fn assert_partition(world: usize, groups: &[Vec<usize>], size: usize, what: &str) {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for group in groups {
        assert_eq!(group.len(), size, "{what} group size");
        for &r in group {
            assert!(r < world, "{what} member {r} outside world {world}");
            assert!(seen.insert(r), "{what}: rank {r} in two groups");
        }
    }
    assert_eq!(seen.len(), world, "{what}: every rank in a group");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coords_roundtrip(
        dp in 1usize..=6, tp in 1usize..=4, pp in 1usize..=4,
        ep_pick in 0usize..64, node_pick in 0usize..64,
    ) {
        let topo = topology(dp, tp, pp, ep_pick, node_pick);
        for r in 0..topo.world_size() {
            let c = topo.coords_of(r);
            prop_assert!(c.dp < topo.dp() && c.tp < topo.tp() && c.pp < topo.pp());
            prop_assert_eq!(topo.global_rank_of(c), r);
        }
    }

    #[test]
    fn groups_partition_global_ranks(
        dp in 1usize..=6, tp in 1usize..=4, pp in 1usize..=4,
        ep_pick in 0usize..64, node_pick in 0usize..64,
    ) {
        let topo = topology(dp, tp, pp, ep_pick, node_pick);
        let world = topo.world_size();
        // Distinct DP groups: one per (tp, pp) pair, i.e. one per rank
        // with DP coordinate 0.
        let dp_groups: Vec<Vec<usize>> = (0..world)
            .filter(|&r| topo.coords_of(r).dp == 0)
            .map(|r| topo.dp_group(r))
            .collect();
        prop_assert_eq!(dp_groups.len(), topo.num_dp_groups());
        assert_partition(world, &dp_groups, topo.dp(), "dp");

        let tp_groups: Vec<Vec<usize>> = (0..world)
            .filter(|&r| topo.coords_of(r).tp == 0)
            .map(|r| topo.tp_group(r))
            .collect();
        assert_partition(world, &tp_groups, topo.tp(), "tp");

        let pp_groups: Vec<Vec<usize>> = (0..world)
            .filter(|&r| topo.coords_of(r).pp == 0)
            .map(|r| topo.pp_group(r))
            .collect();
        assert_partition(world, &pp_groups, topo.pp(), "pp");

        let shard_groups: Vec<Vec<usize>> = (0..topo.num_shard_groups())
            .map(|d| topo.shard_group(d * topo.tp() * topo.pp()))
            .collect();
        assert_partition(world, &shard_groups, topo.tp() * topo.pp(), "shard");

        // Sizes multiply back to the world along both factorizations.
        prop_assert_eq!(topo.num_dp_groups() * topo.dp(), world);
        prop_assert_eq!(topo.num_shard_groups() * topo.tp() * topo.pp(), world);
    }

    #[test]
    fn every_rank_agrees_with_its_groups(
        dp in 1usize..=6, tp in 1usize..=4, pp in 1usize..=4,
        ep_pick in 0usize..64, node_pick in 0usize..64,
    ) {
        let topo = topology(dp, tp, pp, ep_pick, node_pick);
        for r in 0..topo.world_size() {
            let c = topo.coords_of(r);
            // Membership: each group a rank names contains it at the
            // position of the varying coordinate.
            prop_assert_eq!(topo.dp_group(r)[c.dp], r);
            prop_assert_eq!(topo.tp_group(r)[c.tp], r);
            prop_assert_eq!(topo.pp_group(r)[c.pp], r);
            prop_assert!(topo.shard_group(r).contains(&r));
            // Every shard-group member shares the rank's DP index.
            for &m in &topo.shard_group(r) {
                prop_assert_eq!(topo.coords_of(m).dp, c.dp);
            }
        }
    }

    #[test]
    fn node_mapping_covers_world(
        dp in 1usize..=6, tp in 1usize..=4, pp in 1usize..=4,
        ep_pick in 0usize..64, node_pick in 0usize..64,
    ) {
        let topo = topology(dp, tp, pp, ep_pick, node_pick);
        let mut all: Vec<usize> = (0..topo.nodes())
            .flat_map(|n| topo.global_ranks_on_node(n))
            .collect();
        all.sort_unstable();
        let want: Vec<usize> = (0..topo.world_size()).collect();
        prop_assert_eq!(all, want);
        for r in 0..topo.world_size() {
            prop_assert!(topo.node_of_global(r) < topo.nodes());
        }
    }
}
