//! Property tests of the ring collective's determinism contract: for
//! arbitrary world sizes, gradient lengths, chunk sizes, and gradient
//! values, the ring all-reduce must produce output bitwise identical to
//! the star path's sequential rank-order sum on every rank.

use moc_runtime::collective::{ring_all_reduce, sequential_sum_reference, RingMesh};
use proptest::prelude::*;
use std::time::Duration;

/// Deterministic pseudo-random gradients: a splitmix-style generator so
/// the values exercise many exponents/signs without a float strategy per
/// element (the gradient count varies with `world × len`).
fn synth_grads(seed: u64, world: usize, len: usize) -> Vec<Vec<f32>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..world)
        .map(|_| {
            (0..len)
                .map(|_| {
                    // Map to roughly [-8, 8) with plenty of mantissa noise.
                    let bits = next();
                    (bits as f64 / u64::MAX as f64 * 16.0 - 8.0) as f32
                })
                .collect()
        })
        .collect()
}

fn run_ring(grads: &[Vec<f32>], chunk: usize) -> Vec<Vec<f32>> {
    let world = grads.len();
    let mesh = RingMesh::new(world, grads[0].len(), chunk);
    let handles: Vec<_> = grads
        .iter()
        .enumerate()
        .map(|(rank, grad)| {
            let ep = mesh.endpoints(rank);
            let mut grad = grad.clone();
            std::thread::spawn(move || {
                ring_all_reduce(&ep, &mut grad, 7, 3, Duration::from_secs(10))
                    .expect("fault-free ring completes");
                grad
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_is_bitwise_identical_to_rank_order_star_sum(
        world in 1usize..7,
        len in 1usize..200,
        chunk in 1usize..64,
        seed in any::<u64>(),
    ) {
        let grads = synth_grads(seed, world, len);
        let reference: Vec<u32> = sequential_sum_reference(&grads)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        for (rank, out) in run_ring(&grads, chunk).into_iter().enumerate() {
            let bits: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(
                &bits, &reference,
                "rank {} diverged (world {}, len {}, chunk {})",
                rank, world, len, chunk
            );
        }
    }

    #[test]
    fn ring_output_is_independent_of_chunk_size(
        world in 2usize..6,
        len in 1usize..150,
        seed in any::<u64>(),
    ) {
        let grads = synth_grads(seed, world, len);
        let small = run_ring(&grads, 1);
        let large = run_ring(&grads, len.max(7));
        for (a, b) in small.iter().zip(&large) {
            let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(ab, bb);
        }
    }
}
