//! # moc-train — a real pure-Rust MoE training lab
//!
//! The accuracy experiments of the paper (Figs. 5, 14, 15; Tables 3–4)
//! hinge on what happens when training *actually* recovers from a PEC
//! checkpoint. This crate makes that physical:
//!
//! * [`tensor`] / [`params`] / [`adam`] — a compact dense-matrix kernel,
//!   named parameter store and Adam optimizer;
//! * [`model`] — [`TinyMoeLm`], a trainable sparse-MoE language model with
//!   fully manual forward/backward passes (finite-difference-checked),
//!   Switch-style noisy top-1 routing and capacity-based token dropping;
//! * [`data`] — topic-structured Markov corpora with deterministic,
//!   rewindable batches;
//! * [`checkpoint`] — the bridge to `moc-core`: PEC selection over real
//!   serialized tensors, two-level memory/storage saving, and recovery
//!   that genuinely rolls expert states back;
//! * [`harness`] — experiment drivers: fault-injected pre-training with
//!   measured PLT, downstream probes, Dynamic-K, and fine-tuning.
//!
//! # Examples
//!
//! ```no_run
//! use moc_train::harness::{run_experiment, FaultToleranceConfig, TrainConfig};
//!
//! let train = TrainConfig::tiny_8e();
//! let ft = FaultToleranceConfig::baseline(&train.model, 32, vec![]);
//! let report = run_experiment(&train, &ft);
//! println!("final val loss {}", report.final_val_loss);
//! ```

#![warn(missing_docs)]

pub mod adam;
pub mod checkpoint;
pub mod data;
pub mod harness;
pub mod model;
pub mod params;
pub mod tensor;

pub use adam::{adam_step, AdamConfig};
pub use checkpoint::{CheckpointerConfig, PecMode, RecoverySummary, TrainingCheckpointer};
pub use data::MarkovCorpus;
pub use harness::{
    downstream_suite, finetune_experiment, run_experiment, run_experiment_with_model,
    topic_accuracy, FaultToleranceConfig, FinetuneMethod, RunReport, TrainConfig,
};
pub use model::{BatchStats, TinyMoeLm};
pub use params::{module_of, Param, ParamStore};
pub use tensor::Matrix;
