//! Adam optimizer with per-tensor bias correction.
//!
//! The optimizer state (`m`, `v`, step counts) lives in the
//! [`ParamStore`], because it is 6× the weight volume in checkpoints
//! (Fig. 2) and is exactly what persist-PEC selectively skips.

use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 3e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 1.0,
        }
    }
}

/// Applies one Adam step over every parameter with a non-zero gradient
/// footprint, then zeroes gradients. Returns the pre-clip gradient norm.
pub fn adam_step(store: &mut ParamStore, cfg: &AdamConfig) -> f32 {
    let mut sq = 0.0f32;
    for p in store.params() {
        sq += p.grad.sq_norm();
    }
    let norm = sq.sqrt();
    let scale = if cfg.clip > 0.0 && norm > cfg.clip {
        cfg.clip / norm
    } else {
        1.0
    };
    for p in store.params_mut() {
        p.steps += 1;
        let bc1 = 1.0 - cfg.beta1.powi(p.steps as i32);
        let bc2 = 1.0 - cfg.beta2.powi(p.steps as i32);
        let g_iter = p.grad.data().iter();
        for ((g, m), v) in g_iter
            .zip(p.m.data_mut().iter_mut())
            .zip(p.v.data_mut().iter_mut())
        {
            let g = g * scale;
            *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
            *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
        }
        // Second pass applies the update (split to appease the borrow
        // checker without cloning the gradient).
        for i in 0..p.value.len() {
            let m_hat = p.m.data()[i] / bc1;
            let v_hat = p.v.data()[i] / bc2;
            p.value.data_mut()[i] -= cfg.lr * m_hat / (v_hat.sqrt() + cfg.eps);
        }
        p.grad.fill_zero();
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    fn quadratic_store(x0: f32) -> ParamStore {
        let mut s = ParamStore::new();
        s.add("m/x", Matrix::from_vec(1, 1, vec![x0]));
        s
    }

    #[test]
    fn adam_minimises_a_quadratic() {
        // f(x) = (x-3)^2, grad = 2(x-3).
        let mut store = quadratic_store(0.0);
        let cfg = AdamConfig {
            lr: 0.1,
            clip: 0.0,
            ..AdamConfig::default()
        };
        for _ in 0..400 {
            let x = store.value("m/x").data()[0];
            store.grad_mut("m/x").data_mut()[0] = 2.0 * (x - 3.0);
            adam_step(&mut store, &cfg);
        }
        let x = store.value("m/x").data()[0];
        assert!((x - 3.0).abs() < 0.05, "converged to {x}");
    }

    #[test]
    fn grads_zeroed_after_step() {
        let mut store = quadratic_store(1.0);
        store.grad_mut("m/x").data_mut()[0] = 5.0;
        adam_step(&mut store, &AdamConfig::default());
        assert_eq!(store.grad("m/x").data()[0], 0.0);
    }

    #[test]
    fn clipping_bounds_update() {
        let mut a = quadratic_store(0.0);
        let mut b = quadratic_store(0.0);
        a.grad_mut("m/x").data_mut()[0] = 1000.0;
        b.grad_mut("m/x").data_mut()[0] = 1000.0;
        let clipped = AdamConfig {
            clip: 1.0,
            ..AdamConfig::default()
        };
        let unclipped = AdamConfig {
            clip: 0.0,
            ..AdamConfig::default()
        };
        let n1 = adam_step(&mut a, &clipped);
        let n2 = adam_step(&mut b, &unclipped);
        assert_eq!(n1, n2, "returned norm is pre-clip");
        // Both take a similar first Adam step (sign-dominated), but the
        // clipped moments are 1000x smaller.
        assert!(a.params()[0].m.data()[0].abs() < 0.01 * b.params()[0].m.data()[0].abs());
    }

    #[test]
    fn step_counts_advance_per_tensor() {
        let mut store = quadratic_store(0.0);
        adam_step(&mut store, &AdamConfig::default());
        adam_step(&mut store, &AdamConfig::default());
        assert_eq!(store.params()[0].steps, 2);
    }
}
