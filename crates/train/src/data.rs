//! Synthetic corpora with learnable structure.
//!
//! The paper pre-trains on WikiText / SlimPajama; this lab substitutes a
//! *topic-structured Markov corpus*: the vocabulary splits into topics,
//! each token has a preferred successor inside its topic, and walks
//! occasionally jump topics. A language model reduces loss by learning the
//! successor table, and MoE experts can specialise per topic — giving the
//! PEC experiments a real signal to lose when expert updates are dropped.

use rand::{RngExt, SeedableRng};

/// Generator of topic-structured token sequences.
#[derive(Debug, Clone)]
pub struct MarkovCorpus {
    vocab: usize,
    topics: usize,
    /// `successor[t]` — the preferred next token of `t`.
    successor: Vec<u16>,
    /// Probability of following the preferred successor.
    fidelity: f64,
    /// Probability of jumping to a different topic.
    jump: f64,
    seed: u64,
}

impl MarkovCorpus {
    /// Builds a corpus over `vocab` tokens split into `topics` topics.
    ///
    /// # Panics
    ///
    /// Panics unless `topics` divides `vocab` and both are positive.
    pub fn new(vocab: usize, topics: usize, seed: u64) -> Self {
        assert!(vocab > 0 && topics > 0, "need tokens and topics");
        assert!(vocab.is_multiple_of(topics), "topics must divide vocab");
        let per = vocab / topics;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        // A random cyclic successor permutation inside each topic makes
        // the bigram table learnable but non-trivial.
        let mut successor = vec![0u16; vocab];
        for topic in 0..topics {
            let base = topic * per;
            let mut members: Vec<usize> = (base..base + per).collect();
            // Fisher-Yates.
            for i in (1..members.len()).rev() {
                let j = rng.random_range(0..=i);
                members.swap(i, j);
            }
            for w in 0..members.len() {
                successor[members[w]] = members[(w + 1) % members.len()] as u16;
            }
        }
        Self {
            vocab,
            topics,
            successor,
            fidelity: 0.85,
            jump: 0.05,
            seed,
        }
    }

    /// A corpus with the same topology but a different successor table —
    /// the distribution shift used by the fine-tuning experiments
    /// (Table 4 proxy).
    pub fn shifted(&self, shift_seed: u64) -> Self {
        Self::new(
            self.vocab,
            self.topics,
            self.seed ^ shift_seed ^ 0xDEAD_BEEF,
        )
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Topic count.
    pub fn topics(&self) -> usize {
        self.topics
    }

    /// Topic of a token.
    pub fn topic_of(&self, token: u16) -> usize {
        token as usize / (self.vocab / self.topics)
    }

    /// The preferred successor of a token (the learnable signal).
    pub fn preferred_successor(&self, token: u16) -> u16 {
        self.successor[token as usize]
    }

    /// Generates a training batch: `batch` sequences of `seq_len` tokens.
    /// Deterministic in `(corpus seed, iteration)`, so replaying an
    /// iteration after fault recovery reproduces the same data.
    pub fn batch(&self, iteration: u64, batch: usize, seq_len: usize) -> Vec<Vec<u16>> {
        (0..batch)
            .map(|b| {
                self.sequence(
                    self.seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(iteration)
                        .wrapping_add((b as u64) << 40),
                    seq_len,
                )
            })
            .collect()
    }

    /// A validation batch disjoint from all training batches.
    pub fn validation(&self, batch: usize, seq_len: usize) -> Vec<Vec<u16>> {
        (0..batch)
            .map(|b| self.sequence(self.seed ^ 0x5EED_5EED ^ ((b as u64) << 17), seq_len))
            .collect()
    }

    /// A sequence biased to stay inside `topic`, for topic-restricted
    /// probes (the downstream-task proxies).
    pub fn topic_probe(&self, topic: usize, probe: u64, seq_len: usize) -> Vec<u16> {
        assert!(topic < self.topics, "topic out of range");
        let per = self.vocab / self.topics;
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(self.seed ^ 0x0B5E ^ probe ^ ((topic as u64) << 32));
        let mut out = Vec::with_capacity(seq_len);
        let mut tok = (topic * per + rng.random_range(0..per)) as u16;
        for _ in 0..seq_len {
            out.push(tok);
            tok = if rng.random::<f64>() < self.fidelity {
                self.successor[tok as usize]
            } else {
                (topic * per + rng.random_range(0..per)) as u16
            };
        }
        out
    }

    fn sequence(&self, seed: u64, seq_len: usize) -> Vec<u16> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let per = self.vocab / self.topics;
        let mut out = Vec::with_capacity(seq_len);
        let mut tok = rng.random_range(0..self.vocab) as u16;
        for _ in 0..seq_len {
            out.push(tok);
            let roll: f64 = rng.random();
            tok = if roll < self.jump {
                // Jump to a uniformly random token anywhere.
                rng.random_range(0..self.vocab) as u16
            } else if roll < self.jump + (1.0 - self.fidelity) {
                // Stay in topic but wander.
                let topic = self.topic_of(tok);
                (topic * per + rng.random_range(0..per)) as u16
            } else {
                self.successor[tok as usize]
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_per_iteration() {
        let c = MarkovCorpus::new(64, 4, 7);
        assert_eq!(c.batch(3, 2, 16), c.batch(3, 2, 16));
        assert_ne!(c.batch(3, 2, 16), c.batch(4, 2, 16));
    }

    #[test]
    fn successors_stay_in_topic() {
        let c = MarkovCorpus::new(64, 4, 1);
        for t in 0..64u16 {
            assert_eq!(
                c.topic_of(t),
                c.topic_of(c.preferred_successor(t)),
                "successor must stay in topic"
            );
        }
    }

    #[test]
    fn successor_is_a_permutation_within_topics() {
        let c = MarkovCorpus::new(64, 4, 2);
        let mut seen = [false; 64];
        for t in 0..64u16 {
            let s = c.preferred_successor(t) as usize;
            assert!(!seen[s], "successor table must be injective");
            seen[s] = true;
        }
    }

    #[test]
    fn sequences_follow_the_chain_mostly() {
        let c = MarkovCorpus::new(64, 4, 3);
        let seq = &c.batch(0, 1, 500)[0];
        let mut follows = 0;
        for w in seq.windows(2) {
            if c.preferred_successor(w[0]) == w[1] {
                follows += 1;
            }
        }
        let frac = follows as f64 / (seq.len() - 1) as f64;
        assert!(
            (0.6..0.95).contains(&frac),
            "preferred-successor fraction {frac}"
        );
    }

    #[test]
    fn topic_probe_stays_in_topic() {
        let c = MarkovCorpus::new(64, 4, 5);
        for topic in 0..4 {
            let probe = c.topic_probe(topic, 0, 100);
            assert!(probe.iter().all(|&t| c.topic_of(t) == topic));
        }
    }

    #[test]
    fn shifted_corpus_differs() {
        let c = MarkovCorpus::new(64, 4, 9);
        let s = c.shifted(1);
        let same = (0..64u16)
            .filter(|&t| c.preferred_successor(t) == s.preferred_successor(t))
            .count();
        assert!(same < 32, "shift must change most successors ({same} kept)");
    }

    #[test]
    fn validation_differs_from_training() {
        let c = MarkovCorpus::new(64, 4, 11);
        assert_ne!(c.validation(2, 32), c.batch(0, 2, 32));
    }

    #[test]
    #[should_panic(expected = "topics must divide vocab")]
    fn uneven_topics_panic() {
        MarkovCorpus::new(65, 4, 0);
    }
}
