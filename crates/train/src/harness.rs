//! Experiment driver: pre-training with faults and recovery, downstream
//! probes, and fine-tuning — the machinery behind Figs. 5, 14, 15 and
//! Tables 3–4.
//!
//! A run trains a [`TinyMoeLm`] on a [`MarkovCorpus`], checkpoints through
//! a [`TrainingCheckpointer`] every `I_ckpt` iterations, injects node
//! faults from a schedule, and performs real rollback recovery: after a
//! fault, expert tensors revert to their restored versions, the data
//! stream rewinds to the resume iteration, and the lost token updates are
//! accounted into a measured PLT (Eq. 7).

use crate::adam::{adam_step, AdamConfig};
use crate::checkpoint::{CheckpointerConfig, PecMode, TrainingCheckpointer};
use crate::data::MarkovCorpus;
use crate::model::TinyMoeLm;
use moc_core::dynamic_k::DynamicK;
use moc_core::placement::{num_failure_domains, PlacementError};
use moc_core::plt::PltAccumulator;
use moc_core::selection::{PecConfig, SelectionStrategy};
use moc_core::topology::ParallelTopology;
use moc_moe::{ExpertLoadTracker, MoeModelConfig};
use moc_store::FaultEvent;
use serde::{Deserialize, Serialize};

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Model architecture.
    pub model: MoeModelConfig,
    /// Topic count of the synthetic corpus.
    pub topics: usize,
    /// Sequences per batch.
    pub batch: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
    /// Training horizon in iterations.
    pub total_iterations: u64,
    /// Evaluate validation loss every this many iterations.
    pub eval_every: u64,
    /// Optimizer settings.
    pub adam: AdamConfig,
    /// Master seed (model init, corpus, gate noise).
    pub seed: u64,
}

impl TrainConfig {
    /// A fast default over the tiny 8-expert model.
    pub fn tiny_8e() -> Self {
        Self {
            model: moc_moe::presets::tiny_lm_8e(),
            topics: 8,
            batch: 8,
            seq_len: 32,
            total_iterations: 240,
            eval_every: 40,
            adam: AdamConfig::default(),
            seed: 17,
        }
    }

    /// A fast default over the tiny 16-expert model.
    pub fn tiny_16e() -> Self {
        Self {
            model: moc_moe::presets::tiny_lm_16e(),
            ..Self::tiny_8e()
        }
    }
}

/// Fault-tolerance configuration of a run.
#[derive(Debug, Clone)]
pub struct FaultToleranceConfig {
    /// Experts snapshotted per layer per checkpoint (`K_snapshot`).
    pub k_snapshot: usize,
    /// Experts persisted per layer per checkpoint (`K_persist`).
    pub k_persist: usize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
    /// Which state parts PEC governs (W / O / WO / NONE).
    pub mode: PecMode,
    /// Two-level recovery from healthy nodes' memory.
    pub two_level: bool,
    /// Checkpoint interval in iterations.
    pub i_ckpt: u64,
    /// Fault schedule.
    pub faults: Vec<FaultEvent>,
    /// Dynamic-K budget (None = fixed K).
    pub dynamic_k_budget: Option<f64>,
    /// Virtual cluster topology.
    pub topology: ParallelTopology,
    /// Expert replication factor for elastic placement planning (`1` =
    /// no replication). Validated against the topology's failure-domain
    /// count by [`FaultToleranceConfig::validate`].
    pub replication: usize,
}

impl FaultToleranceConfig {
    /// Full checkpointing, no PEC, storage recovery (the paper baseline).
    pub fn baseline(model: &MoeModelConfig, i_ckpt: u64, faults: Vec<FaultEvent>) -> Self {
        Self {
            k_snapshot: model.num_experts(),
            k_persist: model.num_experts(),
            strategy: SelectionStrategy::Sequential,
            mode: PecMode::NONE,
            two_level: false,
            i_ckpt,
            faults,
            dynamic_k_budget: None,
            topology: ParallelTopology::dp_ep(2, 4, 8, 8).expect("lab topology"),
            replication: 1,
        }
    }

    /// The same configuration over a different virtual topology (e.g. a
    /// TP/PP grid). The single-loop harness computes identical numerics
    /// on any topology — only checkpoint-shard placement and which
    /// memory tier a fault wipes follow the node mapping — so reports
    /// are comparable across topologies at equal `(dp, ep)`.
    pub fn with_topology(mut self, topology: ParallelTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Checks the configuration against the cluster it names. The one
    /// constraint the topology alone cannot absorb is the replication
    /// factor: a cluster with fewer failure domains than requested
    /// replicas cannot host any placement plan, which used to surface
    /// as a panic deep inside the planner.
    ///
    /// # Errors
    ///
    /// [`PlacementError::ZeroReplication`] or
    /// [`PlacementError::ReplicationExceedsDomains`] when the cluster
    /// cannot host `replication`.
    pub fn validate(&self) -> Result<(), PlacementError> {
        let domains = num_failure_domains(&self.topology);
        if self.replication == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        if self.replication > domains {
            return Err(PlacementError::ReplicationExceedsDomains {
                replication: self.replication,
                domains,
            });
        }
        Ok(())
    }

    /// PEC with the given `(K_snapshot, K_persist)` and mode.
    pub fn pec(
        model: &MoeModelConfig,
        k_snapshot: usize,
        k_persist: usize,
        mode: PecMode,
        two_level: bool,
        i_ckpt: u64,
        faults: Vec<FaultEvent>,
    ) -> Self {
        Self {
            k_snapshot,
            k_persist,
            mode,
            two_level,
            ..Self::baseline(model, i_ckpt, faults)
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// `(iteration, validation loss)` curve.
    pub val_curve: Vec<(u64, f32)>,
    /// Final validation loss.
    pub final_val_loss: f32,
    /// `(iteration, topic-match accuracy)` curve (the vision-proxy
    /// "test accuracy" of Fig. 14(b)).
    pub acc_curve: Vec<(u64, f64)>,
    /// Measured PLT (Eq. 7) across all faults.
    pub plt: f64,
    /// `K` in effect at each fault (Dynamic-K trace).
    pub k_trace: Vec<usize>,
    /// Wall iterations executed (including redone work after rollbacks).
    pub iterations_executed: u64,
    /// Total bytes persisted over the run.
    pub persisted_bytes: u64,
}

/// Runs one pre-training experiment.
///
/// # Panics
///
/// Panics if the corpus topics do not divide the vocabulary, the fault
/// schedule references nodes outside the topology, or
/// [`FaultToleranceConfig::validate`] rejects the configuration.
pub fn run_experiment(train: &TrainConfig, ft: &FaultToleranceConfig) -> RunReport {
    run_experiment_with_model(train, ft).0
}

/// Like [`run_experiment`], additionally returning the trained model (for
/// downstream probing and fine-tuning).
pub fn run_experiment_with_model(
    train: &TrainConfig,
    ft: &FaultToleranceConfig,
) -> (RunReport, TinyMoeLm) {
    ft.validate()
        .unwrap_or_else(|e| panic!("invalid fault-tolerance config: {e}"));
    let corpus = MarkovCorpus::new(train.model.vocab_size(), train.topics, train.seed);
    let mut model = TinyMoeLm::new(train.model.clone(), train.seed);
    let layers = train.model.num_moe_layers();
    let n = train.model.num_experts();

    let mut checkpointer = TrainingCheckpointer::new(CheckpointerConfig {
        snapshot_pec: PecConfig::new(ft.k_snapshot, n, layers, ft.strategy),
        k_persist: ft.k_persist,
        mode: ft.mode,
        two_level: ft.two_level,
        topology: ft.topology,
        engine: moc_ckpt::EngineConfig::default(),
    });
    let mut tracker = ExpertLoadTracker::new(layers, n);
    let mut cum_routed = vec![vec![0u64; n]; layers];
    checkpointer.bootstrap(&model, 0, cum_routed.clone());

    let mut dynamic_k = ft
        .dynamic_k_budget
        .map(|b| DynamicK::new(ft.k_snapshot, n, b));
    let mut plt_acc = PltAccumulator::new(layers);
    let mut faults = ft.faults.clone();
    faults.sort_by_key(|f| f.iteration);
    let mut fault_idx = 0;
    let mut k_trace = Vec::new();

    let mut val_curve = Vec::new();
    let mut acc_curve = Vec::new();
    let mut executed = 0u64;
    let mut it = 1u64;
    while it <= train.total_iterations {
        executed += 1;
        let batch = corpus.batch(it - 1, train.batch, train.seq_len);
        let stats = model.forward_backward(&batch, train.seed ^ (it << 1));
        adam_step(model.store_mut(), &train.adam);
        for (layer, loads) in stats.expert_loads.iter().enumerate() {
            tracker.record(layer, loads);
            plt_acc.record_processed(layer, loads.iter().sum());
            for (slot, &l) in cum_routed[layer].iter_mut().zip(loads) {
                *slot += l;
            }
        }

        if it.is_multiple_of(ft.i_ckpt) {
            let selected = checkpointer.checkpoint(
                &model,
                it,
                matches!(ft.strategy, SelectionStrategy::LoadAware).then_some(&tracker),
                cum_routed.clone(),
            );
            for id in selected {
                tracker.mark_saved(id);
            }
        }

        if it.is_multiple_of(train.eval_every) || it == train.total_iterations {
            let val = corpus.validation(train.batch, train.seq_len);
            val_curve.push((it, model.evaluate(&val).loss));
            acc_curve.push((it, topic_accuracy(&mut model, &corpus, 2)));
        }

        // Fault?
        while fault_idx < faults.len() && faults[fault_idx].iteration == it {
            let fault = faults[fault_idx];
            fault_idx += 1;
            k_trace.push(checkpointer.config().snapshot_pec.k);
            let summary = checkpointer
                .fault_and_recover(&mut model, fault.node, it)
                .expect("bootstrap checkpoint guarantees recoverability");
            let r = summary.resume_iteration;
            // Exact lost-token accounting per expert.
            let routed_r = checkpointer.routed_at(r).expect("checkpointed").clone();
            let mut fault_plt = 0.0;
            for (id, version) in &summary.expert_versions {
                let routed_v = checkpointer
                    .routed_at(*version)
                    .expect("expert restored from a recorded version");
                let lost = routed_r[id.layer][id.expert] - routed_v[id.layer][id.expert];
                plt_acc.record_loss(id.layer, lost);
                if plt_acc.processed(id.layer) > 0 {
                    fault_plt += lost as f64 / plt_acc.processed(id.layer) as f64;
                }
            }
            fault_plt /= layers as f64;
            if let Some(ctl) = dynamic_k.as_mut() {
                let new_k = ctl.on_fault_recovery(fault_plt);
                checkpointer.set_k(new_k);
            }
            // Rewind: data and routing bookkeeping return to iteration r.
            cum_routed = routed_r;
            tracker = ExpertLoadTracker::new(layers, n);
            it = r;
        }
        it += 1;
    }

    let final_val_loss = val_curve.last().map(|&(_, l)| l).unwrap_or(f32::NAN);
    (
        RunReport {
            val_curve,
            final_val_loss,
            acc_curve,
            plt: plt_acc.plt(),
            k_trace,
            iterations_executed: executed,
            persisted_bytes: checkpointer.persisted_bytes(),
        },
        model,
    )
}

/// Topic-match accuracy: fraction of probe positions where the model's
/// greedy next token lands in the prefix's topic (the vision-proxy
/// classification metric).
pub fn topic_accuracy(model: &mut TinyMoeLm, corpus: &MarkovCorpus, probes_per_topic: u64) -> f64 {
    let mut hits = 0u64;
    let mut total = 0u64;
    for topic in 0..corpus.topics() {
        for probe in 0..probes_per_topic {
            let seq = corpus.topic_probe(topic, probe, 12);
            let pred = model.predict_next(&seq);
            total += 1;
            if corpus.topic_of(pred) == topic {
                hits += 1;
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

/// Next-token exact-match accuracy on topic-restricted probes — the
/// downstream-task proxy suite (Table 3). Returns one accuracy per topic.
pub fn downstream_suite(
    model: &mut TinyMoeLm,
    corpus: &MarkovCorpus,
    probes_per_topic: u64,
    probe_len: usize,
) -> Vec<f64> {
    (0..corpus.topics())
        .map(|topic| {
            let mut hits = 0u64;
            let mut total = 0u64;
            for probe in 0..probes_per_topic {
                let seq = corpus.topic_probe(topic, probe, probe_len);
                // Evaluate greedy prediction at a few cut points.
                for cut in [probe_len / 2, probe_len - 1] {
                    let pred = model.predict_next(&seq[..cut]);
                    total += 1;
                    if pred == seq[cut] {
                        hits += 1;
                    }
                }
            }
            hits as f64 / total.max(1) as f64
        })
        .collect()
}

/// Fine-tuning methods of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FinetuneMethod {
    /// No fine-tuning (the pre-trained base).
    Base,
    /// Fine-tune with all expert parameters frozen ("FT-w.o.E").
    FreezeExperts,
    /// Fine-tune with full-state checkpointing ("FT-Full").
    Full,
    /// Fine-tune with PEC checkpoints and a midpoint fault ("FT-PEC").
    Pec {
        /// Experts saved per layer per checkpoint.
        k: usize,
    },
}

/// Runs the Table-4 fine-tuning comparison: pre-train once, then fine-tune
/// on a shifted corpus under `method`, with a fault at the midpoint for
/// the checkpointed variants. Returns mean downstream accuracy on the
/// shifted distribution.
pub fn finetune_experiment(
    train: &TrainConfig,
    pretrained: &TinyMoeLm,
    method: FinetuneMethod,
    ft_iterations: u64,
    i_ckpt: u64,
) -> f64 {
    let shifted =
        MarkovCorpus::new(train.model.vocab_size(), train.topics, train.seed).shifted(0x0F17);
    let mut model = pretrained.clone();
    if method == FinetuneMethod::Base {
        return mean(&downstream_suite(&mut model, &shifted, 4, 16));
    }
    let n = train.model.num_experts();
    let layers = train.model.num_moe_layers();
    let (k, mode) = match method {
        FinetuneMethod::Pec { k } => (k, PecMode::WO),
        _ => (n, PecMode::NONE),
    };
    let mut checkpointer = TrainingCheckpointer::new(CheckpointerConfig {
        snapshot_pec: PecConfig::sequential(k, n, layers),
        k_persist: k,
        mode,
        two_level: false,
        topology: ParallelTopology::dp_ep(2, 4, 8, 8).expect("lab topology"),
        engine: moc_ckpt::EngineConfig::default(),
    });
    let mut cum = vec![vec![0u64; n]; layers];
    checkpointer.bootstrap(&model, 0, cum.clone());
    let midpoint = ft_iterations / 2;
    let mut it = 1u64;
    while it <= ft_iterations {
        let batch = shifted.batch(it - 1, train.batch, train.seq_len);
        let stats = model.forward_backward(&batch, train.seed ^ (it << 3));
        if method == FinetuneMethod::FreezeExperts {
            // Zero expert gradients: only non-expert parameters update.
            let names: Vec<String> = model
                .store()
                .params()
                .iter()
                .filter(|p| p.name.contains(".expert"))
                .map(|p| p.name.clone())
                .collect();
            for name in names {
                model.store_mut().grad_mut(&name).fill_zero();
            }
        }
        adam_step(model.store_mut(), &train.adam);
        for (layer, loads) in stats.expert_loads.iter().enumerate() {
            for (slot, &l) in cum[layer].iter_mut().zip(loads) {
                *slot += l;
            }
        }
        if it.is_multiple_of(i_ckpt) {
            checkpointer.checkpoint(&model, it, None, cum.clone());
        }
        if it == midpoint && method != FinetuneMethod::FreezeExperts {
            let summary = checkpointer
                .fault_and_recover(&mut model, 0, it)
                .expect("recoverable");
            cum = checkpointer
                .routed_at(summary.resume_iteration)
                .expect("recorded")
                .clone();
            it = summary.resume_iteration;
        }
        it += 1;
    }
    mean(&downstream_suite(&mut model, &shifted, 4, 16))
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unhostable_replication_rejected() {
        let train = quick_train();
        // The lab topology has 2 nodes -> 2 failure domains.
        let mut ft = FaultToleranceConfig::baseline(&train.model, 20, vec![]);
        ft.validate().unwrap();
        ft.replication = 3;
        assert_eq!(
            ft.validate(),
            Err(PlacementError::ReplicationExceedsDomains {
                replication: 3,
                domains: 2
            })
        );
        ft.replication = 0;
        assert_eq!(ft.validate(), Err(PlacementError::ZeroReplication));
        ft.replication = 2;
        ft.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid fault-tolerance config")]
    fn run_experiment_rejects_unhostable_replication() {
        let train = quick_train();
        let ft = FaultToleranceConfig {
            replication: 5,
            ..FaultToleranceConfig::baseline(&train.model, 20, vec![])
        };
        run_experiment(&train, &ft);
    }

    fn quick_train() -> TrainConfig {
        TrainConfig {
            batch: 4,
            seq_len: 16,
            total_iterations: 60,
            eval_every: 20,
            ..TrainConfig::tiny_8e()
        }
    }

    #[test]
    fn fault_free_training_reduces_loss() {
        let train = quick_train();
        let ft = FaultToleranceConfig::baseline(&train.model, 20, vec![]);
        let report = run_experiment(&train, &ft);
        let first = report.val_curve.first().unwrap().1;
        assert!(
            report.final_val_loss < first,
            "loss should fall: {first} -> {}",
            report.final_val_loss
        );
        assert_eq!(report.plt, 0.0);
        assert_eq!(report.iterations_executed, 60);
    }

    #[test]
    fn tp_pp_topology_reproduces_flat_reports() {
        // Same dp and ep, but each DP rank's state spread over a 2×2
        // TP/PP shard group across two nodes: the harness numerics and
        // the full-checkpointing recovery must be identical to the flat
        // layout, fault-free and faulted.
        let train = quick_train();
        let grid = ParallelTopology::new(2, 8, 4, 2, 2, 4).unwrap();
        let flat = ParallelTopology::dp_ep(1, 4, 4, 4).unwrap();
        for faults in [
            vec![],
            vec![FaultEvent {
                iteration: 35,
                node: 0,
            }],
        ] {
            let base = FaultToleranceConfig::baseline(&train.model, 10, faults).with_topology(flat);
            let on_grid = base.clone().with_topology(grid);
            let flat_report = run_experiment(&train, &base);
            let grid_report = run_experiment(&train, &on_grid);
            assert_eq!(
                flat_report, grid_report,
                "grid topology must not change the harness trajectory"
            );
        }
    }

    #[test]
    fn fault_with_full_checkpointing_loses_no_updates() {
        let train = quick_train();
        // Fault strikes 5 iterations past the latest checkpoint (30).
        let faults = vec![FaultEvent {
            iteration: 35,
            node: 0,
        }];
        let ft = FaultToleranceConfig::baseline(&train.model, 10, faults);
        let report = run_experiment(&train, &ft);
        assert_eq!(report.plt, 0.0, "full checkpointing has zero PLT");
        // Rollback redoes iterations 31..=35: executed = 60 + 5.
        assert_eq!(report.iterations_executed, 65);
    }

    #[test]
    fn pec_fault_incurs_plt_and_still_trains() {
        let train = quick_train();
        let faults = vec![FaultEvent {
            iteration: 30,
            node: 0,
        }];
        let ft = FaultToleranceConfig::pec(&train.model, 1, 1, PecMode::WO, false, 10, faults);
        let report = run_experiment(&train, &ft);
        assert!(report.plt > 0.0, "PEC recovery loses expert updates");
        let first = report.val_curve.first().unwrap().1;
        assert!(report.final_val_loss < first, "training still converges");
    }

    #[test]
    fn two_level_reduces_plt_vs_storage_only() {
        let train = quick_train();
        let faults = vec![FaultEvent {
            iteration: 30,
            node: 0,
        }];
        let storage =
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::WO, false, 10, faults.clone());
        let twolevel = FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::WO, true, 10, faults);
        let plt_storage = run_experiment(&train, &storage).plt;
        let plt_two = run_experiment(&train, &twolevel).plt;
        assert!(
            plt_two < plt_storage,
            "two-level {plt_two} must beat storage {plt_storage}"
        );
    }

    #[test]
    fn pec_persists_fewer_bytes_than_full() {
        let train = quick_train();
        let full = FaultToleranceConfig::baseline(&train.model, 10, vec![]);
        let pec = FaultToleranceConfig::pec(&train.model, 1, 1, PecMode::WO, false, 10, vec![]);
        let b_full = run_experiment(&train, &full).persisted_bytes;
        let b_pec = run_experiment(&train, &pec).persisted_bytes;
        assert!(
            (b_pec as f64) < 0.7 * b_full as f64,
            "pec {b_pec} vs full {b_full}"
        );
    }

    #[test]
    fn dynamic_k_raises_k_under_fault_burst() {
        let train = TrainConfig {
            total_iterations: 120,
            ..quick_train()
        };
        let faults: Vec<FaultEvent> = (1..=6)
            .map(|i| FaultEvent {
                iteration: i * 18,
                node: 0,
            })
            .collect();
        let ft = FaultToleranceConfig {
            dynamic_k_budget: Some(0.02),
            ..FaultToleranceConfig::pec(&train.model, 1, 1, PecMode::WO, false, 6, faults)
        };
        let report = run_experiment(&train, &ft);
        assert!(report.k_trace.len() >= 2);
        assert!(
            report.k_trace.last().unwrap() > report.k_trace.first().unwrap(),
            "K must grow: {:?}",
            report.k_trace
        );
    }

    #[test]
    fn downstream_suite_beats_chance_after_training() {
        let train = quick_train();
        let ft = FaultToleranceConfig::baseline(&train.model, 20, vec![]);
        let corpus = MarkovCorpus::new(train.model.vocab_size(), train.topics, train.seed);
        let mut model = TinyMoeLm::new(train.model.clone(), train.seed);
        let before = mean(&downstream_suite(&mut model, &corpus, 2, 12));
        let _ = ft;
        // Train briefly.
        let report = run_experiment(&train, &ft);
        let _ = report;
        // Chance level is 1/vocab = 1/256; topic accuracy chance 1/8.
        assert!(before < 0.3, "untrained accuracy near chance, got {before}");
    }

    #[test]
    fn finetune_base_differs_from_full() {
        let train = quick_train();
        let pretrained = {
            let ft = FaultToleranceConfig::baseline(&train.model, 20, vec![]);
            let _ = run_experiment(&train, &ft);
            TinyMoeLm::new(train.model.clone(), train.seed)
        };
        let base = finetune_experiment(&train, &pretrained, FinetuneMethod::Base, 0, 10);
        let full = finetune_experiment(&train, &pretrained, FinetuneMethod::Full, 120, 10);
        assert!((0.0..=1.0).contains(&base));
        assert!(
            full > base,
            "fine-tuning should help on the shifted corpus: {full} vs {base}"
        );
    }
}
