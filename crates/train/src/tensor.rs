//! Minimal dense-matrix kernel for the training lab.
//!
//! The lab needs exactly the operations a manual-backprop MoE transformer
//! uses: matmul (plain, A·Bᵀ and Aᵀ·B variants for gradients), elementwise
//! combinators, and a numerically stable softmax/cross-entropy pair. All
//! storage is row-major `f32`.

use serde::{Deserialize, Serialize};

/// A row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows · cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (`[m,k]·[k,n] → [m,n]`).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`[m,k]·[n,k]ᵀ → [m,n]`).
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t inner dims");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *out.at_mut(i, j) = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` (`[k,m]ᵀ·[k,n] → [m,n]`), the weight-gradient shape.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul inner dims");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Adds `other` scaled by `alpha` in place.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "axpy shape");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sets all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of squared elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }
}

/// In-place ReLU; returns the activation mask needed by the backward pass.
pub fn relu_forward(x: &mut Matrix) -> Vec<bool> {
    x.data_mut()
        .iter_mut()
        .map(|v| {
            if *v > 0.0 {
                true
            } else {
                *v = 0.0;
                false
            }
        })
        .collect()
}

/// Backward of ReLU: zeroes gradient where the activation was clamped.
pub fn relu_backward(grad: &mut Matrix, mask: &[bool]) {
    assert_eq!(grad.len(), mask.len(), "mask shape");
    for (g, &m) in grad.data_mut().iter_mut().zip(mask) {
        if !m {
            *g = 0.0;
        }
    }
}

/// Stable softmax over a slice, in place.
pub fn softmax_inplace(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Cross-entropy loss and gradient for one position.
///
/// Returns `(loss, grad)` where `grad = softmax(logits) − one_hot(target)`.
pub fn cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    let mut probs = logits.to_vec();
    softmax_inplace(&mut probs);
    let p = probs[target].max(1e-12);
    let loss = -p.ln();
    probs[target] -= 1.0;
    (loss, probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 0.5, -1.0, 2.0, 1.5, 0.0]);
        let b = m(
            4,
            3,
            &[1.0, 2.0, 3.0, 0.0, 1.0, 0.0, -1.0, 0.5, 2.0, 1.0, 1.0, 1.0],
        );
        let direct = a.matmul_transposed(&b);
        // Explicit transpose of b.
        let mut bt = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                *bt.at_mut(j, i) = b.at(i, j);
            }
        }
        assert_eq!(direct, a.matmul(&bt));
    }

    #[test]
    fn transposed_matmul_matches_explicit() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[0.5, 1.0, -1.0, 0.0, 2.0, 2.0]);
        let direct = a.transposed_matmul(&b);
        let mut at = Matrix::zeros(2, 3);
        for i in 0..3 {
            for j in 0..2 {
                *at.at_mut(j, i) = a.at(i, j);
            }
        }
        assert_eq!(direct, at.matmul(&b));
    }

    #[test]
    fn relu_roundtrip() {
        let mut x = m(1, 4, &[-1.0, 2.0, 0.0, 3.0]);
        let mask = relu_forward(&mut x);
        assert_eq!(x.data(), &[0.0, 2.0, 0.0, 3.0]);
        assert_eq!(mask, vec![false, true, false, true]);
        let mut g = m(1, 4, &[1.0, 1.0, 1.0, 1.0]);
        relu_backward(&mut g, &mask);
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_normalises() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let (loss, grad) = cross_entropy(&[0.0, 0.0], 0);
        assert!((loss - 0.5f32.ln().abs()).abs() < 1e-6);
        assert!((grad[0] + 0.5).abs() < 1e-6);
        assert!((grad[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = vec![0.3f32, -0.7, 1.1, 0.2];
        let target = 2;
        let (_, grad) = cross_entropy(&logits, target);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus[i] += eps;
            let mut minus = logits.clone();
            minus[i] -= eps;
            let (lp, _) = cross_entropy(&plus, target);
            let (lm, _) = cross_entropy(&minus, target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-3,
                "dim {i}: fd {fd} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = m(1, 3, &[1.0, 1.0, 1.0]);
        let b = m(1, 3, &[2.0, 4.0, 6.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
