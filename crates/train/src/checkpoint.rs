//! Bridge between the training lab and the MoC checkpoint system.
//!
//! [`TrainingCheckpointer`] serializes real model state ([`ParamStore`]
//! tensors) into shard payloads, runs PEC selection (snapshot and persist
//! levels, with the paper's "W"/"O"/"WO" variants controlling whether PEC
//! applies to weights, optimizer states, or both — Fig. 14(a)), stores
//! them in a simulated cluster (per-node CPU memory + shared object
//! store), and performs two-level recovery after node faults, physically
//! rolling expert tensors back to their restored versions.
//!
//! Persistence goes through the checkpoint engine's
//! [`moc_ckpt::ShardWriter`]: shards are delta-encoded against their last
//! full version and committed by a versioned manifest, and recovery reads
//! the store through [`moc_ckpt::ChainStore`] so only committed state —
//! reconstructed `full ⊕ delta`, CRC-checked — is ever restored.

use crate::model::TinyMoeLm;
use crate::params::Param;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use moc_ckpt::{ChainStore, EngineConfig, ShardWriter, WriterStats};
use moc_core::recovery::{fetch_action, plan_recovery, RecoveryError, RecoverySource};
use moc_core::selection::PecConfig;
use moc_core::topology::ParallelTopology;
use moc_moe::{ExpertId, ExpertLoadTracker};
use moc_store::{ClusterMemory, MemoryObjectStore, NodeId, ObjectStore, ShardKey, StatePart};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Which state categories PEC applies to (Fig. 14(a)'s W / O / WO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PecMode {
    /// Apply PEC to model weights.
    pub weights: bool,
    /// Apply PEC to optimizer states.
    pub optimizer: bool,
}

impl PecMode {
    /// PEC on weights only ("W").
    pub const W: PecMode = PecMode {
        weights: true,
        optimizer: false,
    };
    /// PEC on optimizer states only ("O").
    pub const O: PecMode = PecMode {
        weights: false,
        optimizer: true,
    };
    /// PEC on both ("WO").
    pub const WO: PecMode = PecMode {
        weights: true,
        optimizer: true,
    };
    /// PEC disabled (full checkpointing baseline).
    pub const NONE: PecMode = PecMode {
        weights: false,
        optimizer: false,
    };
}

/// Checkpointer configuration.
#[derive(Debug, Clone)]
pub struct CheckpointerConfig {
    /// Snapshot-level PEC selection (`K_snapshot`).
    pub snapshot_pec: PecConfig,
    /// Experts persisted per layer (`K_persist ≤ K_snapshot`).
    pub k_persist: usize,
    /// Which state parts PEC governs.
    pub mode: PecMode,
    /// Whether recovery may use healthy nodes' memory snapshots.
    pub two_level: bool,
    /// Virtual cluster placing experts on nodes.
    pub topology: ParallelTopology,
    /// Persist-pipeline policy (delta shards, rebase interval).
    pub engine: EngineConfig,
}

/// Outcome of a recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySummary {
    /// Iteration training resumes from.
    pub resume_iteration: u64,
    /// Restored version per expert (staleness relative to
    /// `resume_iteration` is the PLT driver). Reports the *older* of the
    /// weight/optimizer versions when the mode splits them.
    pub expert_versions: Vec<(ExpertId, u64)>,
    /// Shards restored from CPU memory.
    pub memory_hits: usize,
    /// Shards restored from persistent storage.
    pub storage_hits: usize,
}

/// Serializes, saves and recovers real training state through the MoC
/// mechanisms.
pub struct TrainingCheckpointer {
    config: CheckpointerConfig,
    memory: ClusterMemory,
    store: Arc<dyn ObjectStore>,
    writer: ShardWriter,
    checkpoint_index: u64,
    /// Cumulative per-expert routed tokens recorded at each checkpoint
    /// version (for exact lost-token accounting).
    routed_at_version: HashMap<u64, Vec<Vec<u64>>>,
}

impl std::fmt::Debug for TrainingCheckpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingCheckpointer")
            .field("checkpoint_index", &self.checkpoint_index)
            .finish()
    }
}

impl TrainingCheckpointer {
    /// Creates a checkpointer over an in-memory object store.
    pub fn new(config: CheckpointerConfig) -> Self {
        let nodes = config.topology.nodes();
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let writer = ShardWriter::new(0, store.clone(), config.engine);
        Self {
            config,
            memory: ClusterMemory::new(nodes),
            store,
            writer,
            checkpoint_index: 0,
            routed_at_version: HashMap::new(),
        }
    }

    /// The persist writer's counters (full/delta shard mix, stored vs raw
    /// bytes).
    pub fn writer_stats(&self) -> WriterStats {
        self.writer.stats()
    }

    /// The configuration.
    pub fn config(&self) -> &CheckpointerConfig {
        &self.config
    }

    /// Number of PEC checkpoints taken (bootstrap excluded).
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoint_index
    }

    /// Cumulative routed tokens `[layer][expert]` recorded at `version`.
    pub fn routed_at(&self, version: u64) -> Option<&Vec<Vec<u64>>> {
        self.routed_at_version.get(&version)
    }

    /// Full checkpoint of everything (training start / Dynamic-K resets).
    pub fn bootstrap(&mut self, model: &TinyMoeLm, iteration: u64, routed: Vec<Vec<u64>>) {
        let all: Vec<ExpertId> = model.config().expert_ids();
        self.save(model, iteration, &all, &all, routed);
    }

    /// Replaces the snapshot-level `K` (the Dynamic-K control knob).
    pub fn set_k(&mut self, k: usize) {
        let pec = &mut self.config.snapshot_pec;
        *pec = PecConfig::new(k, pec.num_experts, pec.num_moe_layers, pec.strategy);
        self.config.k_persist = self.config.k_persist.min(k);
    }

    /// PEC checkpoint at `iteration`. `tracker` enables load-aware
    /// selection; `routed` is the cumulative per-expert token count.
    /// Returns the snapshot-level expert selection.
    pub fn checkpoint(
        &mut self,
        model: &TinyMoeLm,
        iteration: u64,
        tracker: Option<&ExpertLoadTracker>,
        routed: Vec<Vec<u64>>,
    ) -> Vec<ExpertId> {
        let t = self.checkpoint_index;
        self.checkpoint_index += 1;
        let snap_sel = match tracker {
            Some(tr) => self.config.snapshot_pec.select_with_tracker(t, tr),
            None => self.config.snapshot_pec.select(t),
        };
        // persist-PEC rotates independently (stride K_persist) so its
        // coverage never stalls when K_snapshot is large; experts outside
        // the current snapshot window persist their latest in-memory
        // snapshot (Section 5.1's key-value retrieval from memory).
        let pec = &self.config.snapshot_pec;
        let persist_sel =
            PecConfig::sequential(self.config.k_persist, pec.num_experts, pec.num_moe_layers)
                .select(t);
        self.save(model, iteration, &snap_sel, &persist_sel, routed);
        snap_sel
    }

    fn save(
        &mut self,
        model: &TinyMoeLm,
        iteration: u64,
        snapshot_experts: &[ExpertId],
        persist_experts: &[ExpertId],
        routed: Vec<Vec<u64>>,
    ) {
        self.routed_at_version.insert(iteration, routed);
        let cfg = model.config().clone();
        let n = cfg.num_experts();
        let snap: std::collections::HashSet<ExpertId> = snapshot_experts.iter().copied().collect();
        let persist: std::collections::HashSet<ExpertId> =
            persist_experts.iter().copied().collect();
        // Snapshot level runs inline; the persist level is batched and
        // handed to the engine's shard writer, which delta-encodes and
        // commits the whole batch under one manifest.
        let mut batch: Vec<(ShardKey, Bytes)> = Vec::new();
        for module in model.store().module_names() {
            let expert = expert_of(&cfg, &module);
            for part in [StatePart::Weights, StatePart::Optimizer] {
                let governed = match part {
                    StatePart::Weights => self.config.mode.weights,
                    StatePart::Optimizer => self.config.mode.optimizer,
                    StatePart::Extra => false,
                };
                let (do_snapshot, do_persist) = match (expert, governed) {
                    (None, _) | (Some(_), false) => (true, true),
                    (Some(id), true) => (snap.contains(&id), persist.contains(&id)),
                };
                let node = self.module_node(&cfg, &module, n);
                if do_snapshot {
                    let payload = serialize_module(model, &module, part);
                    let key = ShardKey::new(module.clone(), part, iteration);
                    self.memory.node(node).put(&key, payload.clone());
                    if do_persist {
                        batch.push((key, payload));
                    }
                } else if do_persist {
                    // Persist the expert's latest in-memory snapshot (an
                    // older version than `iteration`); the writer dedups
                    // it if that exact version is already committed.
                    if let Some((version, payload)) = self.memory.node(node).get(&module, part) {
                        batch.push((ShardKey::new(module.clone(), part, version), payload));
                    }
                }
            }
        }
        self.writer
            .persist(iteration, batch.iter().map(|(k, b)| (k, &b[..])))
            .expect("in-memory store persist");
    }

    /// Which virtual node holds a module's snapshot.
    fn module_node(&self, cfg: &moc_moe::MoeModelConfig, module: &str, n: usize) -> NodeId {
        let topo = &self.config.topology;
        match expert_of(cfg, module) {
            Some(id) => {
                let rank = topo.ranks_hosting_expert(id.expert, n)[0];
                NodeId(topo.node_of(rank))
            }
            None => {
                // Non-expert modules spread round-robin over ranks (the
                // fully sharded placement); hash by name for determinism.
                let h: usize = module.bytes().map(|b| b as usize).sum();
                NodeId(topo.node_of(h % topo.dp()))
            }
        }
    }

    /// Injects a fault on `node` and recovers `model` from the freshest
    /// sources, resuming at the latest complete checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] if any module has no recoverable state
    /// (train without a bootstrap checkpoint to see it).
    pub fn fault_and_recover(
        &mut self,
        model: &mut TinyMoeLm,
        node: usize,
        at_iteration: u64,
    ) -> Result<RecoverySummary, RecoveryError> {
        self.memory.fault(NodeId(node));
        let mut healthy = vec![true; self.config.topology.nodes()];
        healthy[node] = false;

        let cfg = model.config().clone();
        let slots: Vec<(String, StatePart)> = model
            .store()
            .module_names()
            .into_iter()
            .flat_map(|m| [(m.clone(), StatePart::Weights), (m, StatePart::Optimizer)])
            .collect();
        // Recovery reads through the committed chain view: delta shards
        // reconstruct transparently and uncommitted (torn) persists are
        // invisible.
        let chain = ChainStore::load_expecting(self.store.clone(), Some(1))?;
        let plan = plan_recovery(
            &slots,
            &self.memory,
            &chain,
            &healthy,
            at_iteration,
            self.config.two_level,
        )?;
        let mut expert_versions: HashMap<ExpertId, u64> = HashMap::new();
        let mut memory_hits = 0;
        let mut storage_hits = 0;
        for action in &plan.actions {
            let bytes = fetch_action(action, &self.memory, &chain)?;
            deserialize_module(model, &action.module, action.part, &bytes);
            match action.source {
                RecoverySource::Memory { .. } => memory_hits += 1,
                RecoverySource::Storage => storage_hits += 1,
            }
            if let Some(id) = expert_of(&cfg, &action.module) {
                let v = expert_versions.entry(id).or_insert(u64::MAX);
                *v = (*v).min(action.version);
            }
        }
        let mut expert_versions: Vec<(ExpertId, u64)> = expert_versions.into_iter().collect();
        expert_versions.sort();
        Ok(RecoverySummary {
            resume_iteration: plan.resume_iteration,
            expert_versions,
            memory_hits,
            storage_hits,
        })
    }

    /// Total bytes currently persisted.
    pub fn persisted_bytes(&self) -> u64 {
        self.store.total_bytes().unwrap_or(0)
    }
}

/// Maps a module name to its expert identity, if it is an expert module.
pub fn expert_of(cfg: &moc_moe::MoeModelConfig, module: &str) -> Option<ExpertId> {
    let rest = module.strip_prefix("layer")?;
    let (layer_str, tail) = rest.split_once('.')?;
    let expert_str = tail.strip_prefix("expert")?;
    let layer: usize = layer_str.parse().ok()?;
    let expert: usize = expert_str.parse().ok()?;
    let position = cfg.moe_layer_position(layer)?;
    Some(ExpertId::new(position, expert))
}

/// Serializes a module's tensors for one state part.
///
/// Weights: each tensor's values, f32 LE, in registration order.
/// Optimizer: per tensor `steps:u64 | m | v`.
pub fn serialize_module(model: &TinyMoeLm, module: &str, part: StatePart) -> Bytes {
    let params = model.store().module_params(module);
    let mut buf = BytesMut::new();
    for p in params {
        match part {
            StatePart::Weights => put_matrix(&mut buf, &p.value),
            StatePart::Optimizer => {
                buf.put_u64_le(p.steps);
                put_matrix(&mut buf, &p.m);
                put_matrix(&mut buf, &p.v);
            }
            StatePart::Extra => {}
        }
    }
    buf.freeze()
}

/// Restores a module's tensors from a serialized payload.
///
/// # Panics
///
/// Panics if the payload does not match the module's tensor shapes.
pub fn deserialize_module(model: &mut TinyMoeLm, module: &str, part: StatePart, bytes: &Bytes) {
    let names: Vec<String> = model
        .store()
        .module_params(module)
        .iter()
        .map(|p| p.name.clone())
        .collect();
    let mut buf = bytes.clone();
    for name in names {
        let store = model.store_mut();
        let idx_param: &mut Param = store
            .params_mut()
            .iter_mut()
            .find(|p| p.name == name)
            .expect("param exists");
        match part {
            StatePart::Weights => get_matrix(&mut buf, &mut idx_param.value),
            StatePart::Optimizer => {
                assert!(buf.remaining() >= 8, "truncated optimizer payload");
                idx_param.steps = buf.get_u64_le();
                get_matrix(&mut buf, &mut idx_param.m);
                get_matrix(&mut buf, &mut idx_param.v);
            }
            StatePart::Extra => {}
        }
    }
    assert_eq!(buf.remaining(), 0, "payload length mismatch for {module}");
}

fn put_matrix(buf: &mut BytesMut, m: &crate::tensor::Matrix) {
    buf.reserve(4 * m.len());
    for &x in m.data() {
        buf.put_f32_le(x);
    }
}

fn get_matrix(buf: &mut Bytes, m: &mut crate::tensor::Matrix) {
    assert!(buf.remaining() >= 4 * m.len(), "truncated tensor payload");
    for x in m.data_mut() {
        *x = buf.get_f32_le();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::selection::SelectionStrategy;
    use moc_moe::presets;

    fn model() -> TinyMoeLm {
        TinyMoeLm::new(presets::tiny_lm_8e(), 42)
    }

    fn checkpointer(
        k_snapshot: usize,
        k_persist: usize,
        mode: PecMode,
        two_level: bool,
    ) -> TrainingCheckpointer {
        let cfg = presets::tiny_lm_8e();
        TrainingCheckpointer::new(CheckpointerConfig {
            snapshot_pec: PecConfig::new(
                k_snapshot,
                cfg.num_experts(),
                cfg.num_moe_layers(),
                SelectionStrategy::Sequential,
            ),
            k_persist,
            mode,
            two_level,
            topology: ParallelTopology::dp_ep(2, 4, 8, 8).unwrap(),
            engine: EngineConfig::default(),
        })
    }

    fn zero_routed(cfg: &moc_moe::MoeModelConfig) -> Vec<Vec<u64>> {
        vec![vec![0; cfg.num_experts()]; cfg.num_moe_layers()]
    }

    #[test]
    fn expert_of_parses_module_names() {
        let cfg = presets::tiny_lm_8e(); // moe layers at 1, 3
        assert_eq!(expert_of(&cfg, "layer1.expert3"), Some(ExpertId::new(0, 3)));
        assert_eq!(expert_of(&cfg, "layer3.expert0"), Some(ExpertId::new(1, 0)));
        assert_eq!(expert_of(&cfg, "layer0.ffn"), None);
        assert_eq!(expert_of(&cfg, "embedding"), None);
        assert_eq!(expert_of(&cfg, "layer1.gate"), None);
    }

    #[test]
    fn serialize_roundtrip_preserves_state() {
        let mut m = model();
        // Perturb state so the roundtrip is meaningful.
        m.store_mut().value_mut("layer1.expert0/w1").data_mut()[0] = 1.25;
        m.store_mut().params_mut()[3].steps = 7;
        let w = serialize_module(&m, "layer1.expert0", StatePart::Weights);
        let o = serialize_module(&m, "layer1.expert0", StatePart::Optimizer);
        let mut restored = model();
        deserialize_module(&mut restored, "layer1.expert0", StatePart::Weights, &w);
        deserialize_module(&mut restored, "layer1.expert0", StatePart::Optimizer, &o);
        assert_eq!(restored.store().value("layer1.expert0/w1").data()[0], 1.25);
    }

    #[test]
    fn full_checkpoint_recovery_restores_exact_state() {
        let mut m = model();
        let routed = zero_routed(m.config());
        let mut ck = checkpointer(8, 8, PecMode::NONE, true);
        m.store_mut().value_mut("embedding/tok").data_mut()[0] = 9.5;
        ck.bootstrap(&m, 0, routed.clone());
        let snapshot = m.clone();
        // Trash the live model, then recover.
        for p in m.store_mut().params_mut() {
            p.value.fill_zero();
        }
        let summary = ck.fault_and_recover(&mut m, 0, 5).unwrap();
        assert_eq!(summary.resume_iteration, 0);
        assert_eq!(
            m.store().value("embedding/tok").data()[0],
            snapshot.store().value("embedding/tok").data()[0]
        );
    }

    #[test]
    fn pec_recovery_rolls_experts_back() {
        let mut m = model();
        let routed = zero_routed(m.config());
        let mut ck = checkpointer(1, 1, PecMode::WO, false);
        ck.bootstrap(&m, 0, routed.clone());
        // Change an expert weight, checkpoint (which may not include it),
        // then recover: experts outside the selection revert.
        let probe = "layer1.expert5/w1";
        let original = m.store().value(probe).data()[0];
        m.store_mut().value_mut(probe).data_mut()[0] = 7.75;
        // Selection at t=0, K=1: layer position 0 saves expert 0 only.
        ck.checkpoint(&m, 10, None, routed.clone());
        let summary = ck.fault_and_recover(&mut m, 0, 12).unwrap();
        assert_eq!(summary.resume_iteration, 10);
        assert_eq!(
            m.store().value(probe).data()[0],
            original,
            "expert 5 must roll back to bootstrap"
        );
        let v5 = summary
            .expert_versions
            .iter()
            .find(|(id, _)| *id == ExpertId::new(0, 5))
            .unwrap()
            .1;
        assert_eq!(v5, 0, "expert 5 restored from bootstrap version");
        let v0 = summary
            .expert_versions
            .iter()
            .find(|(id, _)| *id == ExpertId::new(0, 0))
            .unwrap()
            .1;
        assert_eq!(v0, 10, "expert 0 saved at the checkpoint");
    }

    #[test]
    fn mode_w_keeps_optimizer_fresh() {
        let mut m = model();
        let routed = zero_routed(m.config());
        let mut ck = checkpointer(1, 1, PecMode::W, false);
        ck.bootstrap(&m, 0, routed.clone());
        m.store_mut()
            .params_mut()
            .iter_mut()
            .for_each(|p| p.steps = 33);
        ck.checkpoint(&m, 10, None, routed.clone());
        ck.fault_and_recover(&mut m, 0, 11).unwrap();
        // Optimizer was saved fully at iteration 10: steps restored to 33
        // even for unselected experts.
        let p = m
            .store()
            .params()
            .iter()
            .find(|p| p.name == "layer1.expert5/w1")
            .unwrap();
        assert_eq!(p.steps, 33);
    }

    #[test]
    fn two_level_recovery_prefers_memory() {
        let mut m = model();
        let routed = zero_routed(m.config());
        // K_snapshot = 4, K_persist = 1.
        let mut ck = checkpointer(4, 1, PecMode::WO, true);
        ck.bootstrap(&m, 0, routed.clone());
        ck.checkpoint(&m, 10, None, routed.clone());
        let s = ck.fault_and_recover(&mut m, 1, 12).unwrap();
        assert!(s.memory_hits > 0, "healthy node snapshots used");
        // Snapshot-selected experts on healthy nodes restore at 10; the
        // same selection through storage-only would mostly sit at 0.
        let fresh = s.expert_versions.iter().filter(|(_, v)| *v == 10).count();
        assert!(fresh >= 4, "snapshot level supplies fresher experts: {s:?}");
    }

    #[test]
    fn persisted_bytes_grow_with_checkpoints() {
        let m = model();
        let routed = zero_routed(m.config());
        let mut ck = checkpointer(2, 1, PecMode::WO, true);
        ck.bootstrap(&m, 0, routed.clone());
        let b0 = ck.persisted_bytes();
        ck.checkpoint(&m, 10, None, routed.clone());
        assert!(ck.persisted_bytes() > b0);
    }
}
