//! A real, trainable sparse-MoE language model with manual backprop.
//!
//! Architecture (per transformer block, attention replaced by a
//! parameter-free causal prefix-mean mixer to keep backprop compact — see
//! DESIGN.md):
//!
//! ```text
//! X   = Embed(tokens) + Pos
//! M   = CausalMean(X);  H = X + M·W_mix + b_mix
//! F   = FFN(H)                       (dense layers)
//!     | p_e · Expert_e(H)            (MoE layers: noisy top-1 gate,
//!     |  0                            capacity overflow ⇒ token dropped)
//! X'  = H + F
//! ```
//!
//! with a tied-embedding LM head and token-level cross-entropy. Every
//! gradient is derived and applied by hand; `grad_check` tests in this
//! module validate them against finite differences. The MoE path follows
//! Switch-style routing: the chosen expert's output is scaled by its gate
//! probability (which is what gives the gate a gradient), and experts
//! beyond capacity pass tokens through untouched.

use crate::params::ParamStore;
use crate::tensor::{cross_entropy, relu_backward, relu_forward, softmax_inplace, Matrix};
use moc_moe::MoeModelConfig;
use rand::{RngExt, SeedableRng};

/// Statistics of one forward(+backward) pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Mean cross-entropy loss per predicted token.
    pub loss: f32,
    /// Number of loss-bearing token positions.
    pub positions: u64,
    /// Tokens accepted per expert, per MoE layer (feeds PLT / load-aware
    /// selection).
    pub expert_loads: Vec<Vec<u64>>,
    /// Tokens dropped by expert-capacity overflow.
    pub dropped_tokens: u64,
}

/// The trainable model.
#[derive(Debug, Clone)]
pub struct TinyMoeLm {
    cfg: MoeModelConfig,
    store: ParamStore,
    /// Gate noise std during training (Eq. 2's ε); zero at eval.
    pub gate_noise_std: f32,
}

struct MoeTokenTrace {
    expert: usize,
    prob: f32,
    probs: Vec<f32>,
    hidden_in: Vec<f32>,
    act: Vec<f32>,
    mask: Vec<bool>,
    expert_out: Vec<f32>,
    dropped: bool,
}

impl TinyMoeLm {
    /// Initialises a model for `cfg` with seeded Gaussian weights.
    pub fn new(cfg: MoeModelConfig, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let d = cfg.hidden_size();
        let f = cfg.ffn_intermediate();
        let v = cfg.vocab_size();
        let tmax = cfg.max_seq_len();
        let n = cfg.num_experts();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = |rows: usize, cols: usize, rng: &mut rand::rngs::StdRng| {
            let mut m = Matrix::zeros(rows, cols);
            for x in m.data_mut() {
                *x = gauss(rng) * 0.02;
            }
            m
        };
        store.add("embedding/tok", init(v, d, &mut rng));
        store.add("embedding/pos", init(tmax, d, &mut rng));
        for layer in 0..cfg.num_layers() {
            store.add(format!("layer{layer}.mix/w"), init(d, d, &mut rng));
            store.add(format!("layer{layer}.mix/b"), Matrix::zeros(1, d));
            if cfg.is_moe_layer(layer) {
                store.add(format!("layer{layer}.gate/w"), init(d, n, &mut rng));
                store.add(format!("layer{layer}.gate/b"), Matrix::zeros(1, n));
                for e in 0..n {
                    store.add(format!("layer{layer}.expert{e}/w1"), init(d, f, &mut rng));
                    store.add(format!("layer{layer}.expert{e}/b1"), Matrix::zeros(1, f));
                    store.add(format!("layer{layer}.expert{e}/w2"), init(f, d, &mut rng));
                    store.add(format!("layer{layer}.expert{e}/b2"), Matrix::zeros(1, d));
                }
            } else {
                store.add(format!("layer{layer}.ffn/w1"), init(d, f, &mut rng));
                store.add(format!("layer{layer}.ffn/b1"), Matrix::zeros(1, f));
                store.add(format!("layer{layer}.ffn/w2"), init(f, d, &mut rng));
                store.add(format!("layer{layer}.ffn/b2"), Matrix::zeros(1, d));
            }
        }
        Self {
            cfg,
            store,
            gate_noise_std: 0.01,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &MoeModelConfig {
        &self.cfg
    }

    /// The parameter store (weights, gradients, optimizer state).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Runs forward + backward over a batch, accumulating gradients.
    /// `noise_seed` makes the gate noise deterministic per iteration.
    pub fn forward_backward(&mut self, batch: &[Vec<u16>], noise_seed: u64) -> BatchStats {
        self.run(batch, true, noise_seed)
    }

    /// Evaluation loss (no gradients, no gate noise).
    pub fn evaluate(&mut self, batch: &[Vec<u16>]) -> BatchStats {
        self.run(batch, false, 0)
    }

    /// Greedy next-token prediction given a prefix (for probes).
    pub fn predict_next(&mut self, prefix: &[u16]) -> u16 {
        let x = self.forward_hidden(prefix, false, 0).0;
        let last = x.rows() - 1;
        let emb = self.store.value("embedding/tok");
        let mut best = (0u16, f32::NEG_INFINITY);
        for tok in 0..self.cfg.vocab_size() {
            let mut dot = 0.0;
            for (a, b) in x.row(last).iter().zip(emb.row(tok)) {
                dot += a * b;
            }
            if dot > best.1 {
                best = (tok as u16, dot);
            }
        }
        best.0
    }

    fn capacity(&self, tokens: usize) -> u64 {
        let n = self.cfg.num_experts() as f64;
        (self.cfg.capacity_factor() * self.cfg.top_k() as f64 * tokens as f64 / n).ceil() as u64
    }

    /// Forward through the blocks only (no head); returns final hidden
    /// states and per-layer traces when `train` is set.
    #[allow(clippy::type_complexity)]
    fn forward_hidden(
        &mut self,
        tokens: &[u16],
        train: bool,
        noise_seed: u64,
    ) -> (Matrix, Vec<LayerTrace>) {
        let d = self.cfg.hidden_size();
        let t_len = tokens.len();
        assert!(t_len <= self.cfg.max_seq_len(), "sequence too long");
        let mut rng = rand::rngs::StdRng::seed_from_u64(noise_seed);
        let mut x = Matrix::zeros(t_len, d);
        {
            let tok_emb = self.store.value("embedding/tok");
            let pos_emb = self.store.value("embedding/pos");
            for (t, &tok) in tokens.iter().enumerate() {
                let row = tok_emb.row(tok as usize);
                let pos = pos_emb.row(t);
                for ((o, &a), &b) in x.row_mut(t).iter_mut().zip(row).zip(pos) {
                    *o = a + b;
                }
            }
        }
        let mut traces = Vec::with_capacity(self.cfg.num_layers());
        let cap = self.capacity(t_len);
        for layer in 0..self.cfg.num_layers() {
            let (next, trace) = self.forward_layer(layer, &x, cap, train, &mut rng);
            traces.push(trace);
            x = next;
        }
        (x, traces)
    }

    fn forward_layer(
        &mut self,
        layer: usize,
        x: &Matrix,
        capacity: u64,
        train: bool,
        rng: &mut rand::rngs::StdRng,
    ) -> (Matrix, LayerTrace) {
        let t_len = x.rows();
        let d = x.cols();
        // Causal prefix mean.
        let mut mean = Matrix::zeros(t_len, d);
        let mut acc = vec![0.0f32; d];
        for t in 0..t_len {
            for (a, &v) in acc.iter_mut().zip(x.row(t)) {
                *a += v;
            }
            let inv = 1.0 / (t + 1) as f32;
            for (o, &a) in mean.row_mut(t).iter_mut().zip(&acc) {
                *o = a * inv;
            }
        }
        let w_mix = self.store.value(&format!("layer{layer}.mix/w")).clone();
        let b_mix = self.store.value(&format!("layer{layer}.mix/b")).clone();
        let mut h = mean.matmul(&w_mix);
        for t in 0..t_len {
            for ((o, &xi), &b) in h.row_mut(t).iter_mut().zip(x.row(t)).zip(b_mix.row(0)) {
                *o += xi + b;
            }
        }

        if self.cfg.is_moe_layer(layer) {
            let n = self.cfg.num_experts();
            let gate_w = self.store.value(&format!("layer{layer}.gate/w")).clone();
            let gate_b = self.store.value(&format!("layer{layer}.gate/b")).clone();
            let mut out = h.clone();
            let mut counts = vec![0u64; n];
            let mut dropped = 0u64;
            let mut tokens = Vec::with_capacity(t_len);
            for t in 0..t_len {
                let mut logits = vec![0.0f32; n];
                for (j, l) in logits.iter_mut().enumerate() {
                    let mut dot = gate_b.at(0, j);
                    for (k, &hv) in h.row(t).iter().enumerate() {
                        dot += hv * gate_w.at(k, j);
                    }
                    *l = dot;
                }
                let mut noisy = logits.clone();
                if train && self.gate_noise_std > 0.0 {
                    for v in noisy.iter_mut() {
                        *v += gauss(rng) * self.gate_noise_std;
                    }
                }
                let expert = argmax(&noisy);
                let mut probs = logits;
                softmax_inplace(&mut probs);
                let prob = probs[expert];
                if counts[expert] >= capacity {
                    dropped += 1;
                    tokens.push(MoeTokenTrace {
                        expert,
                        prob,
                        probs,
                        hidden_in: h.row(t).to_vec(),
                        act: Vec::new(),
                        mask: Vec::new(),
                        expert_out: Vec::new(),
                        dropped: true,
                    });
                    continue;
                }
                counts[expert] += 1;
                let w1 = self.store.value(&format!("layer{layer}.expert{expert}/w1"));
                let b1 = self.store.value(&format!("layer{layer}.expert{expert}/b1"));
                let f_dim = w1.cols();
                let mut a = Matrix::zeros(1, f_dim);
                for (k, &hv) in h.row(t).iter().enumerate() {
                    if hv == 0.0 {
                        continue;
                    }
                    for (o, &w) in a.row_mut(0).iter_mut().zip(w1.row(k)) {
                        *o += hv * w;
                    }
                }
                for (o, &b) in a.row_mut(0).iter_mut().zip(b1.row(0)) {
                    *o += b;
                }
                let mask = relu_forward(&mut a);
                let w2 = self.store.value(&format!("layer{layer}.expert{expert}/w2"));
                let b2 = self.store.value(&format!("layer{layer}.expert{expert}/b2"));
                let mut f_out = vec![0.0f32; d];
                for (k, &av) in a.row(0).iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &w) in f_out.iter_mut().zip(w2.row(k)) {
                        *o += av * w;
                    }
                }
                for (o, &b) in f_out.iter_mut().zip(b2.row(0)) {
                    *o += b;
                }
                for ((o, &f), _) in out.row_mut(t).iter_mut().zip(&f_out).zip(0..d) {
                    *o += prob * f;
                }
                tokens.push(MoeTokenTrace {
                    expert,
                    prob,
                    probs,
                    hidden_in: h.row(t).to_vec(),
                    act: a.row(0).to_vec(),
                    mask,
                    expert_out: f_out,
                    dropped: false,
                });
            }
            (
                out,
                LayerTrace {
                    x_in: x.clone(),
                    mean,
                    hidden: h,
                    ffn: FfnTrace::Moe {
                        tokens,
                        counts,
                        dropped,
                    },
                },
            )
        } else {
            let w1 = self.store.value(&format!("layer{layer}.ffn/w1")).clone();
            let b1 = self.store.value(&format!("layer{layer}.ffn/b1")).clone();
            let mut a = h.matmul(&w1);
            for t in 0..t_len {
                for (o, &b) in a.row_mut(t).iter_mut().zip(b1.row(0)) {
                    *o += b;
                }
            }
            let mask = relu_forward(&mut a);
            let w2 = self.store.value(&format!("layer{layer}.ffn/w2")).clone();
            let b2 = self.store.value(&format!("layer{layer}.ffn/b2")).clone();
            let mut f = a.matmul(&w2);
            for t in 0..t_len {
                for (o, &b) in f.row_mut(t).iter_mut().zip(b2.row(0)) {
                    *o += b;
                }
            }
            let mut out = h.clone();
            out.add_scaled(&f, 1.0);
            (
                out,
                LayerTrace {
                    x_in: x.clone(),
                    mean,
                    hidden: h,
                    ffn: FfnTrace::Dense { act: a, mask },
                },
            )
        }
    }

    fn run(&mut self, batch: &[Vec<u16>], train: bool, noise_seed: u64) -> BatchStats {
        let mut total_loss = 0.0f64;
        let mut positions = 0u64;
        let mut expert_loads = vec![vec![0u64; self.cfg.num_experts()]; self.cfg.num_moe_layers()];
        let mut dropped_tokens = 0u64;
        for (b, tokens) in batch.iter().enumerate() {
            if tokens.len() < 2 {
                continue;
            }
            let (x_final, traces) =
                self.forward_hidden(tokens, train, noise_seed.wrapping_add((b as u64) << 32));
            // Collect routing stats.
            for trace in &traces {
                if let FfnTrace::Moe {
                    counts, dropped, ..
                } = &trace.ffn
                {
                    let pos = moe_position(&traces, trace);
                    for (slot, &c) in expert_loads[pos].iter_mut().zip(counts) {
                        *slot += c;
                    }
                    dropped_tokens += dropped;
                }
            }
            // Head + loss (+ backward).
            let t_len = tokens.len();
            let preds = t_len - 1;
            positions += preds as u64;
            let mut d_x = Matrix::zeros(t_len, x_final.cols());
            {
                let emb = self.store.value("embedding/tok").clone();
                let scale = 1.0 / (batch.len() * preds) as f32;
                let mut d_emb_out = Matrix::zeros(emb.rows(), emb.cols());
                for t in 0..preds {
                    let mut logits = vec![0.0f32; self.cfg.vocab_size()];
                    for (tok, l) in logits.iter_mut().enumerate() {
                        let mut dot = 0.0;
                        for (a, b) in x_final.row(t).iter().zip(emb.row(tok)) {
                            dot += a * b;
                        }
                        *l = dot;
                    }
                    let (loss, grad) = cross_entropy(&logits, tokens[t + 1] as usize);
                    total_loss += loss as f64;
                    if train {
                        for (tok, &g) in grad.iter().enumerate() {
                            if g == 0.0 {
                                continue;
                            }
                            let gs = g * scale;
                            for (o, &xv) in d_emb_out.row_mut(tok).iter_mut().zip(x_final.row(t)) {
                                *o += gs * xv;
                            }
                            for (o, &ev) in d_x.row_mut(t).iter_mut().zip(emb.row(tok)) {
                                *o += gs * ev;
                            }
                        }
                    }
                }
                if train {
                    self.store
                        .grad_mut("embedding/tok")
                        .add_scaled(&d_emb_out, 1.0);
                }
            }
            if train {
                self.backward_blocks(tokens, traces, d_x);
            }
        }
        BatchStats {
            loss: if positions == 0 {
                0.0
            } else {
                (total_loss / positions as f64) as f32
            },
            positions,
            expert_loads,
            dropped_tokens,
        }
    }

    fn backward_blocks(&mut self, tokens: &[u16], traces: Vec<LayerTrace>, mut d_x: Matrix) {
        for (layer, trace) in traces.into_iter().enumerate().rev() {
            d_x = self.backward_layer(layer, trace, d_x);
        }
        // Embedding input side.
        let t_len = tokens.len();
        {
            let tok_grad = self.store.grad_mut("embedding/tok");
            for (t, &tok) in tokens.iter().enumerate().take(t_len) {
                for (o, &g) in tok_grad.row_mut(tok as usize).iter_mut().zip(d_x.row(t)) {
                    *o += g;
                }
            }
        }
        let pos_grad = self.store.grad_mut("embedding/pos");
        for t in 0..t_len {
            for (o, &g) in pos_grad.row_mut(t).iter_mut().zip(d_x.row(t)) {
                *o += g;
            }
        }
    }

    fn backward_layer(&mut self, layer: usize, trace: LayerTrace, d_out: Matrix) -> Matrix {
        let t_len = d_out.rows();
        let d = d_out.cols();
        // d_out = gradient at block output; residual: dH += d_out plus the
        // FFN path's contribution to dH.
        let mut d_h = d_out.clone();
        match trace.ffn {
            FfnTrace::Dense { act, mask } => {
                let w2 = self.store.value(&format!("layer{layer}.ffn/w2")).clone();
                let w1 = self.store.value(&format!("layer{layer}.ffn/w1")).clone();
                // dF = d_out.
                let mut d_a = d_out.matmul_transposed(&w2);
                // dW2 = actᵀ·dF ; db2 = colsum(dF).
                let d_w2 = act.transposed_matmul(&d_out);
                self.store
                    .grad_mut(&format!("layer{layer}.ffn/w2"))
                    .add_scaled(&d_w2, 1.0);
                add_colsum(self.store.grad_mut(&format!("layer{layer}.ffn/b2")), &d_out);
                relu_backward(&mut d_a, &mask);
                let d_w1 = trace.hidden.transposed_matmul(&d_a);
                self.store
                    .grad_mut(&format!("layer{layer}.ffn/w1"))
                    .add_scaled(&d_w1, 1.0);
                add_colsum(self.store.grad_mut(&format!("layer{layer}.ffn/b1")), &d_a);
                let d_h_ffn = d_a.matmul_transposed(&w1);
                d_h.add_scaled(&d_h_ffn, 1.0);
            }
            FfnTrace::Moe { tokens, .. } => {
                let n = self.cfg.num_experts();
                let gate_w = self.store.value(&format!("layer{layer}.gate/w")).clone();
                for (t, tok) in tokens.iter().enumerate() {
                    if tok.dropped {
                        continue;
                    }
                    let d_out_t = d_out.row(t);
                    // dF = p · d_out ; dp = <d_out, expert_out>.
                    let mut d_p = 0.0f32;
                    for (g, &f) in d_out_t.iter().zip(&tok.expert_out) {
                        d_p += g * f;
                    }
                    // Gate gradient through softmax at the chosen index.
                    let mut d_logits = vec![0.0f32; n];
                    for (j, dl) in d_logits.iter_mut().enumerate() {
                        let delta = if j == tok.expert { 1.0 } else { 0.0 };
                        *dl = d_p * tok.prob * (delta - tok.probs[j]);
                    }
                    {
                        let g_w = self.store.grad_mut(&format!("layer{layer}.gate/w"));
                        for (k, &hv) in tok.hidden_in.iter().enumerate() {
                            if hv == 0.0 {
                                continue;
                            }
                            for (o, &dl) in g_w.row_mut(k).iter_mut().zip(&d_logits) {
                                *o += hv * dl;
                            }
                        }
                    }
                    {
                        let g_b = self.store.grad_mut(&format!("layer{layer}.gate/b"));
                        for (o, &dl) in g_b.row_mut(0).iter_mut().zip(&d_logits) {
                            *o += dl;
                        }
                    }
                    // dH from the gate path: Wg·d_logits.
                    for k in 0..d {
                        let mut acc = 0.0;
                        for (j, &dl) in d_logits.iter().enumerate() {
                            acc += gate_w.at(k, j) * dl;
                        }
                        *d_h.at_mut(t, k) += acc;
                    }
                    // Expert backward (per token).
                    let e = tok.expert;
                    let w2 = self
                        .store
                        .value(&format!("layer{layer}.expert{e}/w2"))
                        .clone();
                    let w1 = self
                        .store
                        .value(&format!("layer{layer}.expert{e}/w1"))
                        .clone();
                    let f_dim = w1.cols();
                    // df = p·d_out.
                    let df: Vec<f32> = d_out_t.iter().map(|&g| g * tok.prob).collect();
                    // da = df·W2ᵀ, relu mask.
                    let mut da = vec![0.0f32; f_dim];
                    for (k, dav) in da.iter_mut().enumerate() {
                        if !tok.mask[k] {
                            continue;
                        }
                        let mut acc = 0.0;
                        for (j, &dfv) in df.iter().enumerate() {
                            acc += w2.at(k, j) * dfv;
                        }
                        *dav = acc;
                    }
                    {
                        let g_w2 = self.store.grad_mut(&format!("layer{layer}.expert{e}/w2"));
                        for (k, &av) in tok.act.iter().enumerate() {
                            if av == 0.0 {
                                continue;
                            }
                            for (o, &dfv) in g_w2.row_mut(k).iter_mut().zip(&df) {
                                *o += av * dfv;
                            }
                        }
                        let g_b2 = self.store.grad_mut(&format!("layer{layer}.expert{e}/b2"));
                        for (o, &dfv) in g_b2.row_mut(0).iter_mut().zip(&df) {
                            *o += dfv;
                        }
                        let g_w1 = self.store.grad_mut(&format!("layer{layer}.expert{e}/w1"));
                        for (k, &hv) in tok.hidden_in.iter().enumerate() {
                            if hv == 0.0 {
                                continue;
                            }
                            for (o, &dav) in g_w1.row_mut(k).iter_mut().zip(&da) {
                                *o += hv * dav;
                            }
                        }
                        let g_b1 = self.store.grad_mut(&format!("layer{layer}.expert{e}/b1"));
                        for (o, &dav) in g_b1.row_mut(0).iter_mut().zip(&da) {
                            *o += dav;
                        }
                    }
                    // dH from the expert input path: da·W1ᵀ.
                    for k in 0..d {
                        let mut acc = 0.0;
                        for (j, &dav) in da.iter().enumerate() {
                            acc += w1.at(k, j) * dav;
                        }
                        *d_h.at_mut(t, k) += acc;
                    }
                }
            }
        }

        // Mixer backward: H = X + M·W_mix + b_mix.
        let w_mix = self.store.value(&format!("layer{layer}.mix/w")).clone();
        let d_w_mix = trace.mean.transposed_matmul(&d_h);
        self.store
            .grad_mut(&format!("layer{layer}.mix/w"))
            .add_scaled(&d_w_mix, 1.0);
        add_colsum(self.store.grad_mut(&format!("layer{layer}.mix/b")), &d_h);
        let d_mean = d_h.matmul_transposed(&w_mix);
        // dX = dH (residual) + prefix-mean transpose of d_mean.
        let mut d_x = d_h;
        let mut suffix = vec![0.0f32; d];
        for t in (0..t_len).rev() {
            let inv = 1.0 / (t + 1) as f32;
            for (s, &g) in suffix.iter_mut().zip(d_mean.row(t)) {
                *s += g * inv;
            }
            for (o, &s) in d_x.row_mut(t).iter_mut().zip(&suffix) {
                *o += s;
            }
        }
        let _ = trace.x_in;
        d_x
    }
}

struct LayerTrace {
    x_in: Matrix,
    mean: Matrix,
    hidden: Matrix,
    ffn: FfnTrace,
}

enum FfnTrace {
    Dense {
        act: Matrix,
        mask: Vec<bool>,
    },
    Moe {
        tokens: Vec<MoeTokenTrace>,
        counts: Vec<u64>,
        dropped: u64,
    },
}

fn moe_position(traces: &[LayerTrace], target: &LayerTrace) -> usize {
    traces
        .iter()
        .filter(|t| matches!(t.ffn, FfnTrace::Moe { .. }))
        .position(|t| std::ptr::eq(t, target))
        .expect("trace belongs to the list")
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

fn add_colsum(grad: &mut Matrix, rows: &Matrix) {
    for t in 0..rows.rows() {
        for (o, &g) in grad.row_mut(0).iter_mut().zip(rows.row(t)) {
            *o += g;
        }
    }
}

fn gauss(rng: &mut rand::rngs::StdRng) -> f32 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> MoeModelConfig {
        MoeModelConfig::builder("grad-check")
            .num_layers(2)
            .hidden_size(8)
            .num_heads(2)
            .ffn_mult(2)
            .vocab_size(16)
            .max_seq_len(12)
            .moe_layer_indices(vec![1])
            .num_experts(4)
            .top_k(1)
            .capacity_factor(4.0)
            .build()
            .unwrap()
    }

    fn batch() -> Vec<Vec<u16>> {
        vec![vec![1, 5, 9, 2, 7, 3], vec![4, 4, 8, 1, 0, 15]]
    }

    #[test]
    fn forward_is_deterministic() {
        let mut m1 = TinyMoeLm::new(tiny_cfg(), 3);
        let mut m2 = TinyMoeLm::new(tiny_cfg(), 3);
        let a = m1.evaluate(&batch());
        let b = m2.evaluate(&batch());
        assert_eq!(a, b);
        assert!(a.loss > 0.0);
    }

    #[test]
    fn expert_loads_counted() {
        let mut m = TinyMoeLm::new(tiny_cfg(), 3);
        let stats = m.evaluate(&batch());
        assert_eq!(stats.expert_loads.len(), 1);
        let total: u64 = stats.expert_loads[0].iter().sum();
        assert_eq!(total + stats.dropped_tokens, 12, "every token routed");
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut model = TinyMoeLm::new(tiny_cfg(), 7);
        model.gate_noise_std = 0.0;
        let data = batch();
        model.store_mut().zero_grads();
        model.forward_backward(&data, 0);

        // Check a handful of parameters from every module kind.
        let checks = [
            ("embedding/tok", 5usize),
            ("embedding/pos", 3),
            ("layer0.mix/w", 11),
            ("layer0.ffn/w1", 17),
            ("layer0.ffn/b2", 2),
            ("layer1.gate/w", 9),
        ];
        let eps = 3e-3f32;
        for (name, idx) in checks {
            let analytic = model.store().grad(name).data()[idx];
            let orig = model.store().value(name).data()[idx];
            let loss_at = |m: &mut TinyMoeLm, v: f32| {
                m.store_mut().value_mut(name).data_mut()[idx] = v;
                let s = m.evaluate(&data);
                m.store_mut().value_mut(name).data_mut()[idx] = orig;
                s.loss
            };
            let lp = loss_at(&mut model, orig + eps);
            let lm = loss_at(&mut model, orig - eps);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
                "{name}[{idx}]: finite-diff {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn expert_gradient_check() {
        // Dedicated check through the MoE path (gate prob scaling).
        let mut model = TinyMoeLm::new(tiny_cfg(), 11);
        model.gate_noise_std = 0.0;
        let data = batch();
        model.store_mut().zero_grads();
        model.forward_backward(&data, 0);
        // Find an expert that received tokens.
        let stats = model.evaluate(&data);
        let expert = stats.expert_loads[0]
            .iter()
            .position(|&c| c > 0)
            .expect("some expert used");
        let name = format!("layer1.expert{expert}/w1");
        let idx = 4;
        let analytic = model.store().grad(&name).data()[idx];
        let orig = model.store().value(&name).data()[idx];
        let eps = 3e-3f32;
        let mut eval_at = |v: f32| {
            model.store_mut().value_mut(&name).data_mut()[idx] = v;
            let l = model.evaluate(&data).loss;
            model.store_mut().value_mut(&name).data_mut()[idx] = orig;
            l
        };
        let fd = (eval_at(orig + eps) - eval_at(orig - eps)) / (2.0 * eps);
        assert!(
            (fd - analytic).abs() < 2e-2 * analytic.abs().max(1.0),
            "{name}[{idx}]: fd {fd} vs analytic {analytic}"
        );
    }

    #[test]
    fn capacity_drops_tokens() {
        let cfg = MoeModelConfig::builder("cap")
            .num_layers(1)
            .hidden_size(8)
            .num_heads(2)
            .ffn_mult(2)
            .vocab_size(16)
            .max_seq_len(16)
            .moe_layer_indices(vec![0])
            .num_experts(4)
            .top_k(1)
            .capacity_factor(0.25)
            .build()
            .unwrap();
        let mut m = TinyMoeLm::new(cfg, 0);
        let stats = m.evaluate(&[vec![1u16; 16]]);
        // Capacity ceil(0.25·16/4) = 1 per expert: at most 4 of the 16
        // tokens can be accepted; position embeddings may split the
        // routing across a few experts.
        assert!(
            stats.dropped_tokens >= 12,
            "dropped {}",
            stats.dropped_tokens
        );
    }

    #[test]
    fn predict_next_returns_valid_token() {
        let mut m = TinyMoeLm::new(tiny_cfg(), 5);
        let tok = m.predict_next(&[1, 2, 3]);
        assert!((tok as usize) < m.config().vocab_size());
    }
}
