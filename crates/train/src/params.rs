//! Named parameter storage with gradients and Adam state.
//!
//! Parameters are named `"{module}/{tensor}"` — e.g.
//! `"layer1.expert3/w1"` — so checkpoint shards can address whole modules
//! (the PEC unit) by prefix. The optimizer moments live beside each value,
//! because the paper's checkpoints save (and PEC selectively *skips*)
//! optimizer states as well as weights.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One named parameter tensor with gradient and Adam state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Full name, `"{module}/{tensor}"`.
    pub name: String,
    /// Current weights.
    pub value: Matrix,
    /// Gradient accumulator.
    pub grad: Matrix,
    /// Adam first moment.
    pub m: Matrix,
    /// Adam second moment.
    pub v: Matrix,
    /// Adam step count of *this tensor* (bias correction must roll back
    /// together with the moments when PEC restores an old expert).
    pub steps: u64,
}

/// Ordered, name-indexed parameter collection.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter initialised to `value`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "duplicate parameter {name}"
        );
        let grad = Matrix::zeros(value.rows(), value.cols());
        let m = grad.clone();
        let v = grad.clone();
        self.index.insert(name.clone(), self.params.len());
        self.params.push(Param {
            name,
            value,
            grad,
            m,
            v,
            steps: 0,
        });
    }

    fn idx(&self, name: &str) -> usize {
        *self
            .index
            .get(name)
            .unwrap_or_else(|| panic!("unknown parameter {name}"))
    }

    /// Immutable parameter value.
    pub fn value(&self, name: &str) -> &Matrix {
        &self.params[self.idx(name)].value
    }

    /// Mutable parameter value.
    pub fn value_mut(&mut self, name: &str) -> &mut Matrix {
        let i = self.idx(name);
        &mut self.params[i].value
    }

    /// Immutable gradient.
    pub fn grad(&self, name: &str) -> &Matrix {
        &self.params[self.idx(name)].grad
    }

    /// Mutable gradient.
    pub fn grad_mut(&mut self, name: &str) -> &mut Matrix {
        let i = self.idx(name);
        &mut self.params[i].grad
    }

    /// All parameters in registration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// All parameters, mutably.
    pub fn params_mut(&mut self) -> &mut [Param] {
        &mut self.params
    }

    /// Parameter count (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count.
    pub fn scalar_count(&self) -> u64 {
        self.params.iter().map(|p| p.value.len() as u64).sum()
    }

    /// Zeroes every gradient.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Module names (unique prefixes before `/`), in first-seen order.
    pub fn module_names(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.params {
            let module = module_of(&p.name);
            if seen.last().map(String::as_str) != Some(module) && !seen.iter().any(|s| s == module)
            {
                seen.push(module.to_string());
            }
        }
        seen
    }

    /// Parameters belonging to a module.
    pub fn module_params(&self, module: &str) -> Vec<&Param> {
        self.params
            .iter()
            .filter(|p| module_of(&p.name) == module)
            .collect()
    }

    /// Rebuilds the name index (after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i))
            .collect();
    }
}

/// The module prefix of a parameter name.
pub fn module_of(param_name: &str) -> &str {
    param_name.split('/').next().unwrap_or(param_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        let mut s = ParamStore::new();
        s.add("embedding/tok", Matrix::zeros(4, 2));
        s.add("layer0.mix/w", Matrix::zeros(2, 2));
        s.add("layer1.expert0/w1", Matrix::zeros(2, 4));
        s.add("layer1.expert0/b1", Matrix::zeros(1, 4));
        s
    }

    #[test]
    fn add_and_lookup() {
        let s = store();
        assert_eq!(s.len(), 4);
        assert_eq!(s.value("layer0.mix/w").rows(), 2);
        assert_eq!(s.scalar_count(), 8 + 4 + 8 + 4);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_rejected() {
        let mut s = store();
        s.add("embedding/tok", Matrix::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_lookup_panics() {
        store().value("nope");
    }

    #[test]
    fn module_grouping() {
        let s = store();
        assert_eq!(
            s.module_names(),
            vec!["embedding", "layer0.mix", "layer1.expert0"]
        );
        assert_eq!(s.module_params("layer1.expert0").len(), 2);
        assert_eq!(module_of("layer1.expert0/w1"), "layer1.expert0");
    }

    #[test]
    fn zero_grads_clears() {
        let mut s = store();
        s.grad_mut("embedding/tok").data_mut()[0] = 5.0;
        s.zero_grads();
        assert_eq!(s.grad("embedding/tok").data()[0], 0.0);
    }

    #[test]
    fn rebuild_index_after_clone_of_params() {
        let s = store();
        let mut copy = ParamStore {
            params: s.params.clone(),
            index: HashMap::new(),
        };
        copy.rebuild_index();
        assert_eq!(copy.value("layer0.mix/w"), s.value("layer0.mix/w"));
    }
}
