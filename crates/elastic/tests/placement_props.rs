//! Property tests of the placement planner and the shrink/expand
//! rebalance over arbitrary valid topologies:
//!
//! * every expert lands on `replication` shard groups spanning that
//!   many **distinct failure domains**;
//! * per-group **primary load is balanced within ±1 expert**;
//! * plans are **deterministic** (pure functions of their inputs);
//! * replication factors the cluster cannot host are **rejected**, not
//!   panicked on;
//! * after an arbitrary proper subset of groups dies, every expert's
//!   owner is a survivor, slice adoptions map dead → surviving groups
//!   in a balanced way, and a full expand restores the original plan.

use moc_core::placement::{domain_of_group, num_failure_domains, PlacementError};
use moc_core::topology::ParallelTopology;
use moc_elastic::{plan_expand, plan_shrink, PlacementPlanner};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Materializes an arbitrary valid topology from raw draws (`ep = 1`
/// always divides `dp`; the node count is picked among the divisors of
/// the world so every shape constructs).
fn topology(dp: usize, tp: usize, pp: usize, node_pick: usize) -> ParallelTopology {
    let world = dp * tp * pp;
    let node_counts: Vec<usize> = (1..=world).filter(|n| world.is_multiple_of(*n)).collect();
    let nodes = node_counts[node_pick % node_counts.len()];
    ParallelTopology::new(nodes, world / nodes, dp, tp, pp, 1).expect("constructed shape is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_spreads_replicas_and_balances_primaries(
        dp in 1..9usize,
        tp in 1..3usize,
        pp in 1..3usize,
        node_pick in 0..64usize,
        experts in 1..9usize,
        layers in 1..5usize,
        r_pick in 0..4usize,
    ) {
        let topo = topology(dp, tp, pp, node_pick);
        let domains = num_failure_domains(&topo);
        let replication = 1 + r_pick % domains.max(1);
        let planner = PlacementPlanner::new(topo, experts, layers, replication);
        let plan = planner.plan().expect("hostable replication");

        // Determinism: the plan is a pure function of its inputs.
        prop_assert_eq!(
            &plan,
            &PlacementPlanner::new(topo, experts, layers, replication)
                .plan()
                .unwrap()
        );

        for id in plan.all_experts() {
            let replicas = plan.replicas_of(id);
            prop_assert_eq!(replicas.len(), replication, "{:?}", id);
            let doms: BTreeSet<usize> =
                replicas.iter().map(|&g| domain_of_group(&topo, g)).collect();
            prop_assert_eq!(
                doms.len(),
                replication,
                "{:?}: replicas {:?} must span distinct domains",
                id,
                replicas
            );
            prop_assert_eq!(plan.owner_of(id), replicas[0]);
        }

        // Primary load within ±1 expert of balanced.
        let loads = plan.primary_loads();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        prop_assert!(max - min <= 1, "primary loads {:?}", loads);
        prop_assert_eq!(loads.iter().sum::<usize>(), experts * layers);
    }

    #[test]
    fn unhostable_replication_is_an_error_not_a_panic(
        dp in 1..9usize,
        node_pick in 0..64usize,
        experts in 1..9usize,
        layers in 1..5usize,
        extra in 1..4usize,
    ) {
        let topo = topology(dp, 1, 1, node_pick);
        let domains = num_failure_domains(&topo);
        let planner = PlacementPlanner::new(topo, experts, layers, domains + extra);
        prop_assert_eq!(
            planner.plan().err(),
            Some(PlacementError::ReplicationExceedsDomains {
                replication: domains + extra,
                domains,
            })
        );
        prop_assert_eq!(
            PlacementPlanner::new(topo, experts, layers, 0).plan().err(),
            Some(PlacementError::ZeroReplication)
        );
    }

    #[test]
    fn shrink_rekeys_onto_survivors_and_expand_restores(
        dp in 2..9usize,
        node_pick in 0..64usize,
        experts in 1..9usize,
        layers in 1..5usize,
        r_pick in 0..4usize,
        dead_mask in 1..255usize,
    ) {
        let topo = topology(dp, 1, 1, node_pick);
        let domains = num_failure_domains(&topo);
        let replication = 1 + r_pick % domains;
        let plan = PlacementPlanner::new(topo, experts, layers, replication)
            .plan()
            .unwrap();

        let groups = topo.num_shard_groups();
        let mut dead: BTreeSet<usize> = (0..groups).filter(|g| dead_mask >> g & 1 == 1).collect();
        // Force a nonempty *proper* subset (dp >= 2 guarantees room).
        if dead.is_empty() {
            dead.insert(0);
        }
        if dead.len() == groups {
            let last = *dead.iter().next_back().unwrap();
            dead.remove(&last);
        }

        let shrink = plan_shrink(&plan, &dead).expect("survivors exist");
        // Every expert's owner survives; experts that *had* a surviving
        // owner did not move.
        for id in plan.all_experts() {
            let owner = shrink.placement.owner_of(id);
            prop_assert!(!dead.contains(&owner), "{:?} owned by dead {}", id, owner);
            if !dead.contains(&plan.owner_of(id)) {
                prop_assert_eq!(owner, plan.owner_of(id), "{:?} moved needlessly", id);
            } else if replication > 1 {
                // Migration prefers a surviving replica when one exists.
                if let Some(&replica) = plan
                    .replicas_of(id)
                    .iter()
                    .find(|g| !dead.contains(g))
                {
                    prop_assert_eq!(owner, replica, "{:?} must use its replica", id);
                }
            }
        }
        prop_assert_eq!(shrink.experts_migrated(), shrink.placement.migrated_count());

        // Slice adoption: total, dead → survivor, balanced within ±1.
        prop_assert_eq!(shrink.adoptions.len(), dead.len());
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for (&d, &a) in &shrink.adoptions {
            prop_assert!(dead.contains(&d));
            prop_assert!(!dead.contains(&a));
            *counts.entry(a).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let min = (0..groups)
            .filter(|g| !dead.contains(g))
            .map(|g| counts.get(&g).copied().unwrap_or(0))
            .min()
            .unwrap();
        prop_assert!(max - min <= 1, "adoptions {:?}", shrink.adoptions);

        // Determinism and the expand round-trip.
        prop_assert_eq!(&shrink, &plan_shrink(&plan, &dead).unwrap());
        let expand = plan_expand(&shrink.placement, &dead);
        prop_assert_eq!(&expand.placement, &plan);
        prop_assert_eq!(expand.experts_returned, shrink.experts_migrated());
    }
}
