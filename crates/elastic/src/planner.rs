//! The placement planner: balanced, domain-spread expert assignment.
//!
//! [`PlacementPlanner::plan`] assigns every expert of every MoE layer to
//! `replication` shard groups such that
//!
//! * the groups hosting one expert sit on **distinct failure domains**
//!   (physical nodes, via [`moc_core::placement::domain_of_group`]),
//! * per-group **primary load is balanced within ±1 expert** (primaries
//!   are picked by a deterministic least-loaded scan, so no group ever
//!   runs more than one expert ahead of another),
//! * the plan is a **pure function of the topology and model shape** —
//!   two planners over the same inputs emit identical plans, which the
//!   runtime's determinism contract requires.
//!
//! Replication factors the cluster cannot host are rejected with
//! [`PlacementError::ReplicationExceedsDomains`] instead of panicking —
//! config validation surfaces this before any run starts.

use moc_core::placement::{domain_of_group, num_failure_domains, PlacementError, PlacementPlan};
use moc_core::topology::ParallelTopology;
use std::collections::BTreeSet;

/// Deterministic failure-domain-aware placement planner.
#[derive(Debug, Clone)]
pub struct PlacementPlanner {
    topo: ParallelTopology,
    num_experts: usize,
    num_moe_layers: usize,
    replication: usize,
}

impl PlacementPlanner {
    /// Creates a planner for `num_experts` experts per MoE layer over
    /// `num_moe_layers` layers, replicating each expert onto
    /// `replication` shard groups of `topo`.
    pub fn new(
        topo: ParallelTopology,
        num_experts: usize,
        num_moe_layers: usize,
        replication: usize,
    ) -> Self {
        Self {
            topo,
            num_experts,
            num_moe_layers,
            replication,
        }
    }

    /// Checks the replication factor against the cluster.
    ///
    /// # Errors
    ///
    /// [`PlacementError::ZeroReplication`] for `replication == 0`;
    /// [`PlacementError::ReplicationExceedsDomains`] when the topology
    /// has fewer failure domains than requested replicas.
    pub fn validate(&self) -> Result<(), PlacementError> {
        if self.replication == 0 {
            return Err(PlacementError::ZeroReplication);
        }
        let domains = num_failure_domains(&self.topo);
        if self.replication > domains {
            return Err(PlacementError::ReplicationExceedsDomains {
                replication: self.replication,
                domains,
            });
        }
        Ok(())
    }

    /// Emits the placement plan.
    ///
    /// # Errors
    ///
    /// Propagates [`PlacementPlanner::validate`] failures.
    pub fn plan(&self) -> Result<PlacementPlan, PlacementError> {
        self.validate()?;
        let groups = self.topo.num_shard_groups();
        // Primary load drives primary picks (strict ±1 balance); total
        // load (primaries + replicas) drives replica picks so secondary
        // copies spread too.
        let mut primary_load = vec![0usize; groups];
        let mut total_load = vec![0usize; groups];
        let domains: Vec<usize> = (0..groups)
            .map(|g| domain_of_group(&self.topo, g))
            .collect();

        let mut replicas = Vec::with_capacity(self.num_experts * self.num_moe_layers);
        for _layer in 0..self.num_moe_layers {
            for _e in 0..self.num_experts {
                let mut list = Vec::with_capacity(self.replication);
                let mut used_domains: BTreeSet<usize> = BTreeSet::new();

                // Primary: least primary-loaded group, ties toward the
                // lowest index.
                let primary = (0..groups)
                    .min_by_key(|&g| (primary_load[g], g))
                    .expect("at least one group");
                primary_load[primary] += 1;
                total_load[primary] += 1;
                used_domains.insert(domains[primary]);
                list.push(primary);

                // Replicas: least total-loaded group on an unused domain.
                for _ in 1..self.replication {
                    let pick = (0..groups)
                        .filter(|&g| !used_domains.contains(&domains[g]))
                        .min_by_key(|&g| (total_load[g], g))
                        .expect("validate() guarantees enough domains");
                    total_load[pick] += 1;
                    used_domains.insert(domains[pick]);
                    list.push(pick);
                }
                replicas.push(list);
            }
        }
        PlacementPlan::from_replicas(
            self.replication,
            groups,
            self.num_experts,
            self.num_moe_layers,
            replicas,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_moe::ExpertId;

    fn topo() -> ParallelTopology {
        ParallelTopology::dp_ep(2, 4, 8, 8).unwrap()
    }

    #[test]
    fn plans_are_deterministic() {
        let a = PlacementPlanner::new(topo(), 8, 4, 2).plan().unwrap();
        let b = PlacementPlanner::new(topo(), 8, 4, 2).plan().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn replicas_span_distinct_domains() {
        let plan = PlacementPlanner::new(topo(), 8, 4, 2).plan().unwrap();
        let t = topo();
        for id in plan.all_experts() {
            let doms: BTreeSet<usize> = plan
                .replicas_of(id)
                .iter()
                .map(|&g| domain_of_group(&t, g))
                .collect();
            assert_eq!(doms.len(), 2, "{id:?} replicas must span 2 nodes");
        }
    }

    #[test]
    fn primary_load_is_balanced_within_one() {
        for r in 1..=2 {
            let plan = PlacementPlanner::new(topo(), 8, 4, r).plan().unwrap();
            let loads = plan.primary_loads();
            let max = loads.iter().max().unwrap();
            let min = loads.iter().min().unwrap();
            assert!(max - min <= 1, "r={r}: primary loads {loads:?}");
        }
    }

    #[test]
    fn oversized_replication_rejected() {
        // 2 nodes -> 2 failure domains: r = 3 cannot be hosted.
        let err = PlacementPlanner::new(topo(), 8, 4, 3).plan();
        assert_eq!(
            err,
            Err(PlacementError::ReplicationExceedsDomains {
                replication: 3,
                domains: 2
            })
        );
        let zero = PlacementPlanner::new(topo(), 8, 4, 0).plan();
        assert_eq!(zero, Err(PlacementError::ZeroReplication));
    }

    #[test]
    fn single_replica_plan_covers_every_expert() {
        let plan = PlacementPlanner::new(topo(), 8, 4, 1).plan().unwrap();
        for layer in 0..4 {
            for e in 0..8 {
                let id = ExpertId::new(layer, e);
                assert_eq!(plan.replicas_of(id).len(), 1);
                assert_eq!(plan.owner_of(id), plan.primary_of(id));
            }
        }
    }
}
