//! # moc-elastic — failure-domain-aware placement and elastic recovery
//!
//! MoC-System's two-level recovery (PRs 1–4) restores state fast, but it
//! assumes a fixed-shape grid: the dead ranks are respawned and the run
//! replays from the committed chain. Lazarus-style elastic recovery keeps
//! training *without* the respawn: experts are placed on shard groups
//! spread over distinct failure domains, and when a node dies the
//! surviving groups adopt the dead groups' experts and batch slices, DP
//! gradient groups re-form over the reduced world, and the run continues
//! degraded until replacement capacity rejoins.
//!
//! * [`planner`] — [`PlacementPlanner`]: deterministic, load-balanced
//!   assignment of every expert to `replication` shard groups on
//!   distinct failure domains ([`moc_core::placement`] types);
//! * [`rebalance`] — the shrink/expand plans: [`plan_shrink`] maps dead
//!   groups onto surviving adopters (slices and experts),
//!   [`plan_expand`] returns them home.
//!
//! The plans are pure data: `moc-runtime` executes them live (surviving
//! ranks adopt slices so the DP-order gradient fold — and therefore the
//! loss trajectory — stays bitwise identical to a fixed-shape run
//! replaying from the same checkpoint).

#![warn(missing_docs)]

pub mod planner;
pub mod rebalance;

pub use moc_core::placement::{PlacementError, PlacementPlan};
pub use planner::PlacementPlanner;
pub use rebalance::{plan_expand, plan_shrink, ExpandPlan, ShrinkPlan};
