//! Shrink/expand rebalance plans: who adopts what when groups die.
//!
//! A [`ShrinkPlan`] is computed when shard groups are lost and the run
//! continues on the survivors instead of respawning: every dead group's
//! DP batch slice is adopted by a surviving group (balanced round-robin,
//! deterministic), and every expert owned by a dead group migrates to
//! its first surviving replica under the [`PlacementPlan`] — or to its
//! slice adopter when all replicas died. The symmetric [`ExpandPlan`]
//! returns slices and experts home when replacement groups rejoin.
//!
//! Plans are pure functions of `(placement, dead set)`, so the
//! coordinator and any observer agree on the rebalance without
//! negotiation — the property that lets the runtime keep its bitwise
//! determinism contract through a shrink.

use moc_core::placement::{PlacementError, PlacementPlan};
use moc_moe::ExpertId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The rebalance computed when `dead_groups` are lost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShrinkPlan {
    /// Shard groups that died (DP indices).
    pub dead_groups: BTreeSet<usize>,
    /// Slice adoption: dead group → surviving group that additionally
    /// computes its DP batch slice each step.
    pub adoptions: BTreeMap<usize, usize>,
    /// Experts that migrated: `(expert, from, to)`.
    pub migrations: Vec<(ExpertId, usize, usize)>,
    /// The post-shrink placement (owners re-keyed onto survivors).
    pub placement: PlacementPlan,
}

impl ShrinkPlan {
    /// Number of experts the shrink migrated.
    pub fn experts_migrated(&self) -> usize {
        self.migrations.len()
    }
}

/// The rebalance computed when `returning_groups` rejoin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpandPlan {
    /// Shard groups that rejoined.
    pub returning_groups: BTreeSet<usize>,
    /// Experts that moved back to their original primary.
    pub experts_returned: usize,
    /// The post-expand placement.
    pub placement: PlacementPlan,
}

/// Plans the shrink after `dead` groups were lost from `placement`'s
/// world. Slice adoption assigns each dead group to the surviving group
/// with the fewest adopted slices (ties toward the lowest index);
/// expert ownership migrates through [`PlacementPlan::migrated`] with
/// the slice adopter as the all-replicas-dead fallback.
///
/// # Errors
///
/// [`PlacementError::NoSurvivors`] when `dead` covers every group.
pub fn plan_shrink(
    placement: &PlacementPlan,
    dead: &BTreeSet<usize>,
) -> Result<ShrinkPlan, PlacementError> {
    let survivors: Vec<usize> = (0..placement.num_groups())
        .filter(|g| !dead.contains(g))
        .collect();
    if survivors.is_empty() {
        return Err(PlacementError::NoSurvivors);
    }

    // Balanced deterministic slice adoption.
    let mut adopted_count: BTreeMap<usize, usize> = survivors.iter().map(|&s| (s, 0)).collect();
    let mut adoptions: BTreeMap<usize, usize> = BTreeMap::new();
    for &d in dead {
        let &adopter = survivors
            .iter()
            .min_by_key(|&&s| (adopted_count[&s], s))
            .expect("nonempty survivors");
        *adopted_count.get_mut(&adopter).expect("tracked") += 1;
        adoptions.insert(d, adopter);
    }

    let before = placement.clone();
    let (migrated, _) = placement.migrated(dead, |id| {
        let home = before.owner_of(id);
        adoptions
            .get(&home)
            .copied()
            .unwrap_or_else(|| survivors[0])
    })?;
    let migrations: Vec<(ExpertId, usize, usize)> = before
        .all_experts()
        .filter(|&id| before.owner_of(id) != migrated.owner_of(id))
        .map(|id| (id, before.owner_of(id), migrated.owner_of(id)))
        .collect();

    Ok(ShrinkPlan {
        dead_groups: dead.clone(),
        adoptions,
        migrations,
        placement: migrated,
    })
}

/// Plans the expand when `returning` groups rejoin a shrunk `placement`:
/// their slices return home and every expert whose original primary is
/// in `returning` moves back.
pub fn plan_expand(placement: &PlacementPlan, returning: &BTreeSet<usize>) -> ExpandPlan {
    let (restored, moved) = placement.restored(returning);
    ExpandPlan {
        returning_groups: returning.clone(),
        experts_returned: moved,
        placement: restored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlacementPlanner;
    use moc_core::topology::ParallelTopology;

    fn plan() -> PlacementPlan {
        let topo = ParallelTopology::dp_ep(2, 4, 8, 8).unwrap();
        PlacementPlanner::new(topo, 8, 4, 2).plan().unwrap()
    }

    #[test]
    fn shrink_moves_everything_onto_survivors() {
        let p = plan();
        let dead: BTreeSet<usize> = [4, 5, 6, 7].into_iter().collect();
        let s = plan_shrink(&p, &dead).unwrap();
        for id in s.placement.all_experts() {
            assert!(
                !dead.contains(&s.placement.owner_of(id)),
                "{id:?} still owned by a dead group"
            );
        }
        for (&d, a) in &s.adoptions {
            assert!(dead.contains(&d));
            assert!(!dead.contains(a));
        }
        assert_eq!(s.adoptions.len(), dead.len());
        // Node 1 held half the primaries: they all migrated.
        assert!(s.experts_migrated() > 0);
        // Slice adoption is balanced: 4 dead over 4 survivors, one each.
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for a in s.adoptions.values() {
            *counts.entry(*a).or_default() += 1;
        }
        assert!(counts.values().all(|&c| c == 1), "{:?}", s.adoptions);
    }

    #[test]
    fn shrink_is_deterministic() {
        let p = plan();
        let dead: BTreeSet<usize> = [2, 5].into_iter().collect();
        assert_eq!(plan_shrink(&p, &dead), plan_shrink(&p, &dead));
    }

    #[test]
    fn expand_restores_the_original_plan() {
        let p = plan();
        let dead: BTreeSet<usize> = [4, 5, 6, 7].into_iter().collect();
        let s = plan_shrink(&p, &dead).unwrap();
        let e = plan_expand(&s.placement, &dead);
        assert_eq!(e.placement, p);
        assert_eq!(e.experts_returned, s.experts_migrated());
    }

    #[test]
    fn total_loss_is_rejected() {
        let p = plan();
        let dead: BTreeSet<usize> = (0..8).collect();
        assert_eq!(plan_shrink(&p, &dead), Err(PlacementError::NoSurvivors));
    }

    #[test]
    fn second_shrink_composes() {
        // Kill node 1's groups, then two of the survivors: ownership must
        // still land on live groups.
        let p = plan();
        let first: BTreeSet<usize> = [4, 5, 6, 7].into_iter().collect();
        let s1 = plan_shrink(&p, &first).unwrap();
        let all_dead: BTreeSet<usize> = [2, 3, 4, 5, 6, 7].into_iter().collect();
        let s2 = plan_shrink(&s1.placement, &all_dead).unwrap();
        for id in s2.placement.all_experts() {
            assert!(matches!(s2.placement.owner_of(id), 0 | 1));
        }
    }
}
