//! Parameter accounting: how many parameters live in the expert and
//! non-expert parts of a model, and how large its checkpoints are.
//!
//! These quantities feed Eq. 5 (`C_full`) and Eq. 6 (`C_pec`) of the paper
//! and reproduce the checkpoint composition of Fig. 2.

use crate::config::MoeModelConfig;
use serde::{Deserialize, Serialize};

/// Parameter counts broken down by component.
///
/// `P_ne` (non-expert) and `P_e` (expert) of Eq. 5 are exposed as
/// [`ParamCounts::non_expert`] and [`ParamCounts::expert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamCounts {
    /// Token + position embedding parameters.
    pub embedding: u64,
    /// All attention sublayer parameters (QKV + output projections + biases).
    pub attention: u64,
    /// Dense (non-MoE) FFN sublayer parameters.
    pub dense_ffn: u64,
    /// Gating-network parameters across all MoE layers.
    pub gates: u64,
    /// LayerNorm parameters (two per layer + final).
    pub norms: u64,
    /// Parameters of a single expert FFN.
    pub per_expert: u64,
    /// Total expert parameters across all MoE layers (`P_e`).
    pub expert_total: u64,
}

impl ParamCounts {
    /// Non-expert parameter count (`P_ne`): everything except the experts.
    pub fn non_expert(&self) -> u64 {
        self.embedding + self.attention + self.dense_ffn + self.gates + self.norms
    }

    /// Expert parameter count (`P_e`).
    pub fn expert(&self) -> u64 {
        self.expert_total
    }

    /// Total parameters (`P_ne + P_e`).
    pub fn total(&self) -> u64 {
        self.non_expert() + self.expert()
    }

    /// Fraction of all parameters residing in experts.
    pub fn expert_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.expert() as f64 / self.total() as f64
        }
    }
}

/// Byte-level composition of a full checkpoint, reproducing Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointComposition {
    /// Bytes of expert weights.
    pub expert_weights: u64,
    /// Bytes of non-expert weights.
    pub non_expert_weights: u64,
    /// Bytes of expert optimizer states.
    pub expert_optimizer: u64,
    /// Bytes of non-expert optimizer states.
    pub non_expert_optimizer: u64,
}

impl CheckpointComposition {
    /// Total checkpoint bytes (`C_full`, Eq. 5).
    pub fn total(&self) -> u64 {
        self.expert_weights
            + self.non_expert_weights
            + self.expert_optimizer
            + self.non_expert_optimizer
    }

    /// The four component fractions in Fig. 2 order: expert weights,
    /// non-expert weights, expert optimizer, non-expert optimizer.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total() as f64;
        if t == 0.0 {
            return [0.0; 4];
        }
        [
            self.expert_weights as f64 / t,
            self.non_expert_weights as f64 / t,
            self.expert_optimizer as f64 / t,
            self.non_expert_optimizer as f64 / t,
        ]
    }
}

impl MoeModelConfig {
    /// Computes the parameter inventory of this architecture.
    ///
    /// Attention: `4h² + 4h` per layer (fused QKV + output projection with
    /// biases). FFN (dense or one expert): `2·h·(mult·h) + (mult+1)·h`.
    /// Gate: `h·N + N` per MoE layer. Norms: `2·2h` per layer plus a final
    /// `2h`. Embeddings: `vocab·h + seq·h` (tied LM head).
    ///
    /// # Examples
    ///
    /// ```
    /// use moc_moe::presets;
    /// let counts = presets::gpt_350m_16e().param_counts();
    /// // Expert parameters dominate the MoE model (Fig. 2: ~86%).
    /// assert!(counts.expert_fraction() > 0.8);
    /// ```
    pub fn param_counts(&self) -> ParamCounts {
        let h = self.hidden_size() as u64;
        let inter = self.ffn_intermediate() as u64;
        let layers = self.num_layers() as u64;
        let moe_layers = self.num_moe_layers() as u64;
        let dense_layers = layers - moe_layers;
        let n_exp = self.num_experts() as u64;

        let embedding = self.vocab_size() as u64 * h + self.max_seq_len() as u64 * h;
        let attention = layers * (4 * h * h + 4 * h);
        let ffn_params = 2 * h * inter + inter + h;
        let dense_ffn = dense_layers * ffn_params;
        let gates = moe_layers * (h * n_exp + n_exp);
        let norms = layers * 4 * h + 2 * h;
        let per_expert = ffn_params;
        let expert_total = moe_layers * n_exp * per_expert;

        ParamCounts {
            embedding,
            attention,
            dense_ffn,
            gates,
            norms,
            per_expert,
            expert_total,
        }
    }

    /// Bytes of a full (conventional) checkpoint, `C_full` of Eq. 5.
    pub fn full_checkpoint_bytes(&self) -> u64 {
        self.checkpoint_composition().total()
    }

    /// Byte-level checkpoint composition (Fig. 2).
    pub fn checkpoint_composition(&self) -> CheckpointComposition {
        let counts = self.param_counts();
        let b = self.bytes();
        CheckpointComposition {
            expert_weights: counts.expert() * b.weight,
            non_expert_weights: counts.non_expert() * b.weight,
            expert_optimizer: counts.expert() * b.optimizer,
            non_expert_optimizer: counts.non_expert() * b.optimizer,
        }
    }

    /// Bytes of one expert's checkpoint states (weights + optimizer).
    pub fn expert_state_bytes(&self) -> u64 {
        self.param_counts().per_expert * self.bytes().total()
    }

    /// Bytes of one expert's weights only.
    pub fn expert_weight_bytes(&self) -> u64 {
        self.param_counts().per_expert * self.bytes().weight
    }

    /// Bytes of one expert's optimizer states only.
    pub fn expert_optimizer_bytes(&self) -> u64 {
        self.param_counts().per_expert * self.bytes().optimizer
    }

    /// Bytes of a PEC checkpoint saving `k_pec` of `N` experts per MoE
    /// layer, `C_pec` of Eq. 6.
    ///
    /// # Panics
    ///
    /// Panics if `k_pec` exceeds the number of experts per layer.
    ///
    /// # Examples
    ///
    /// ```
    /// use moc_moe::presets;
    /// let cfg = presets::gpt_350m_16e();
    /// let full = cfg.full_checkpoint_bytes();
    /// let pec1 = cfg.pec_checkpoint_bytes(1);
    /// assert!(pec1 < full / 4, "K_pec = 1 shrinks the checkpoint substantially");
    /// ```
    pub fn pec_checkpoint_bytes(&self, k_pec: usize) -> u64 {
        assert!(
            k_pec <= self.num_experts(),
            "k_pec {k_pec} exceeds expert count {}",
            self.num_experts()
        );
        let counts = self.param_counts();
        let b = self.bytes().total();
        let saved_experts = self.num_moe_layers() as u64 * k_pec as u64;
        counts.non_expert() * b + saved_experts * counts.per_expert * b
    }

    /// `C_pec / C_full` ratio for a given `k_pec` (Fig. 10(a) y-axis).
    pub fn pec_size_ratio(&self, k_pec: usize) -> f64 {
        self.pec_checkpoint_bytes(k_pec) as f64 / self.full_checkpoint_bytes() as f64
    }

    /// Active parameters per token: non-expert + `top_k` experts per MoE
    /// layer (used by the compute model to size F&B FLOPs).
    pub fn active_params_per_token(&self) -> u64 {
        let counts = self.param_counts();
        counts.non_expert() + self.num_moe_layers() as u64 * self.top_k() as u64 * counts.per_expert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn gpt_350m_16e_total_matches_table1() {
        // Table 1 reports 1.7G parameters for GPT-350M-16E.
        let counts = presets::gpt_350m_16e().param_counts();
        let total = counts.total() as f64;
        assert!(
            (1.5e9..2.0e9).contains(&total),
            "total {total} should be ~1.7B"
        );
    }

    #[test]
    fn gpt_125m_8e_total_matches_table1() {
        // Table 1 reports 323M parameters for GPT-125M-8E.
        let counts = presets::gpt_125m_8e().param_counts();
        let total = counts.total() as f64;
        assert!(
            (2.9e8..3.6e8).contains(&total),
            "total {total} should be ~323M"
        );
    }

    #[test]
    fn composition_matches_fig2() {
        // Fig. 2: expert weights ~12%, non-expert weights ~2%,
        // expert optimizer ~74%, non-expert optimizer ~12%.
        let comp = presets::gpt_350m_16e().checkpoint_composition();
        let [ew, nw, eo, no] = comp.fractions();
        assert!((ew - 0.12).abs() < 0.02, "expert weights {ew}");
        assert!((nw - 0.02).abs() < 0.01, "non-expert weights {nw}");
        assert!((eo - 0.74).abs() < 0.04, "expert optimizer {eo}");
        assert!((no - 0.12).abs() < 0.03, "non-expert optimizer {no}");
    }

    #[test]
    fn pec_full_k_equals_full_checkpoint() {
        let cfg = presets::gpt_350m_16e();
        assert_eq!(
            cfg.pec_checkpoint_bytes(cfg.num_experts()),
            cfg.full_checkpoint_bytes()
        );
    }

    #[test]
    fn pec_size_monotone_in_k() {
        let cfg = presets::gpt_350m_16e();
        let mut prev = 0;
        for k in 1..=cfg.num_experts() {
            let s = cfg.pec_checkpoint_bytes(k);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn pec_halving_k_removes_half_the_expert_bytes() {
        let cfg = presets::gpt_350m_16e();
        let expert_bytes = cfg.param_counts().expert() * cfg.bytes().total();
        let full = cfg.full_checkpoint_bytes();
        let half = cfg.pec_checkpoint_bytes(cfg.num_experts() / 2);
        assert_eq!(full - half, expert_bytes / 2);
    }

    #[test]
    #[should_panic(expected = "exceeds expert count")]
    fn pec_k_too_large_panics() {
        presets::gpt_350m_16e().pec_checkpoint_bytes(17);
    }

    #[test]
    fn active_params_smaller_than_total_for_moe() {
        let cfg = presets::gpt_350m_16e();
        let counts = cfg.param_counts();
        assert!(cfg.active_params_per_token() < counts.total());
        assert!(cfg.active_params_per_token() > counts.non_expert());
    }

    #[test]
    fn dense_model_has_zero_expert_params() {
        let cfg = MoeModelConfig::builder("d").dense().build().unwrap();
        let counts = cfg.param_counts();
        assert_eq!(counts.expert(), 0);
        assert_eq!(counts.gates, 0);
        assert_eq!(counts.expert_fraction(), 0.0);
        assert_eq!(counts.total(), counts.non_expert());
    }

    #[test]
    fn composition_total_equals_params_times_bytes() {
        let cfg = presets::gpt_125m_8e();
        let counts = cfg.param_counts();
        assert_eq!(
            cfg.full_checkpoint_bytes(),
            counts.total() * cfg.bytes().total()
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let comp = presets::gpt_350m_16e().checkpoint_composition();
        let sum: f64 = comp.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
