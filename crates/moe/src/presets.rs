//! Model presets matching Table 1 of the paper plus the LLaMA-like MoE
//! configurations used by the scaling simulations (Section 6.2.4).

use crate::config::{MoeModelConfig, StateBytes};
use serde::{Deserialize, Serialize};

/// GPT-125M-8E (Table 1): 12 layers, hidden 768, 12 heads, 6 MoE layers,
/// 8 experts per layer, ≈323M parameters. Used for the PLT correlation
/// study of Fig. 5.
pub fn gpt_125m_8e() -> MoeModelConfig {
    MoeModelConfig::builder("GPT-125M-8E")
        .num_layers(12)
        .hidden_size(768)
        .num_heads(12)
        .vocab_size(50_257)
        .max_seq_len(2048)
        .moe_every_other_layer()
        .num_experts(8)
        .top_k(1)
        .build()
        .expect("preset is valid")
}

/// GPT-350M-16E (Table 1): 24 layers, hidden 1024, 16 heads, 12 MoE layers,
/// 16 experts per layer, ≈1.7B parameters. The main evaluation model.
pub fn gpt_350m_16e() -> MoeModelConfig {
    MoeModelConfig::builder("GPT-350M-16E")
        .num_layers(24)
        .hidden_size(1024)
        .num_heads(16)
        .vocab_size(50_257)
        .max_seq_len(2048)
        .moe_every_other_layer()
        .num_experts(16)
        .top_k(1)
        .build()
        .expect("preset is valid")
}

/// SwinV2-MoE (Table 1), approximated as a flat transformer with the same
/// MoE structure: 24 blocks ([2, 2, 18, 2] stages), 10 MoE layers,
/// 8 experts per layer, ≈173M parameters.
///
/// The hierarchical window attention of SwinV2 is irrelevant to
/// checkpointing (only the parameter inventory matters), so stages are
/// flattened and the hidden size is chosen so the total lands near 173M.
pub fn swinv2_moe() -> MoeModelConfig {
    MoeModelConfig::builder("SwinV2-MoE")
        .num_layers(24)
        .hidden_size(512)
        .num_heads(16)
        .vocab_size(1_000)
        .max_seq_len(256)
        // 10 MoE layers spread through the deep third stage.
        .moe_layer_indices(vec![5, 7, 9, 11, 13, 15, 17, 19, 21, 23])
        .num_experts(8)
        .top_k(1)
        .build()
        .expect("preset is valid")
}

/// Size classes for the LLaMA-like scaling models of Fig. 13(e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlamaMoeSize {
    /// Hidden size 1024 ("Small").
    Small,
    /// Hidden size 2048 ("Medium") — the default for Fig. 13(a-d,f).
    Medium,
    /// Hidden size 3072 ("Large").
    Large,
}

impl LlamaMoeSize {
    /// Hidden dimension of this size class.
    pub fn hidden_size(self) -> usize {
        match self {
            LlamaMoeSize::Small => 1024,
            LlamaMoeSize::Medium => 2048,
            LlamaMoeSize::Large => 3072,
        }
    }
}

/// LLaMA-like MoE model for the scaling simulations (Section 6.2.4):
/// 24 layers, 16 attention heads with head dimension 128 (hidden is taken
/// from the size class), expert intermediate size 4× hidden, every layer
/// MoE with `num_experts` experts (one per GPU in the DP+EP sweeps).
pub fn llama_moe(size: LlamaMoeSize, num_experts: usize, seq_len: usize) -> MoeModelConfig {
    let hidden = size.hidden_size();
    MoeModelConfig::builder(format!("LLaMA-MoE-{}x{num_experts}E", hidden))
        .num_layers(24)
        .hidden_size(hidden)
        // Head count chosen so head_dim = 128 as in the paper's simulations.
        .num_heads(hidden / 128)
        .vocab_size(32_000)
        // The context capacity (position-embedding rows) is an architecture
        // constant; training on shorter sequences must not change the
        // checkpoint volume (Fig. 13(d)).
        .max_seq_len(seq_len.max(1).max(4096))
        .moe_every(1)
        .num_experts(num_experts)
        .top_k(2)
        .build()
        .expect("preset is valid")
}

/// Tiny 8-expert LM used by the real-training lab (`moc-train`) to stand in
/// for GPT-125M-8E in accuracy experiments: same layer *structure*
/// (every-other-layer MoE, 8 experts, top-1) at a laptop-friendly scale.
pub fn tiny_lm_8e() -> MoeModelConfig {
    MoeModelConfig::builder("Tiny-LM-8E")
        .num_layers(4)
        .hidden_size(48)
        .num_heads(4)
        .vocab_size(256)
        .max_seq_len(64)
        .moe_every_other_layer()
        .num_experts(8)
        .top_k(1)
        .capacity_factor(1.5)
        .bytes(StateBytes::FP32_ADAM)
        .build()
        .expect("preset is valid")
}

/// Tiny 16-expert LM mirroring GPT-350M-16E's structure for the
/// fault-recovery accuracy studies (Fig. 14(a), Table 3).
pub fn tiny_lm_16e() -> MoeModelConfig {
    MoeModelConfig::builder("Tiny-LM-16E")
        .num_layers(4)
        .hidden_size(48)
        .num_heads(4)
        .vocab_size(256)
        .max_seq_len(64)
        .moe_every_other_layer()
        .num_experts(16)
        .top_k(1)
        .capacity_factor(1.5)
        .bytes(StateBytes::FP32_ADAM)
        .build()
        .expect("preset is valid")
}

/// All Table-1 presets with their paper-reported total parameter counts.
pub fn table1() -> Vec<(MoeModelConfig, &'static str)> {
    vec![
        (gpt_125m_8e(), "323M"),
        (gpt_350m_16e(), "1.7G"),
        (swinv2_moe(), "173M"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_have_expected_moe_counts() {
        let p125 = gpt_125m_8e();
        assert_eq!(p125.num_moe_layers(), 6);
        assert_eq!(p125.num_experts(), 8);
        let p350 = gpt_350m_16e();
        assert_eq!(p350.num_moe_layers(), 12);
        assert_eq!(p350.num_experts(), 16);
        let swin = swinv2_moe();
        assert_eq!(swin.num_moe_layers(), 10);
        assert_eq!(swin.num_experts(), 8);
    }

    #[test]
    fn swinv2_total_near_173m() {
        let total = swinv2_moe().param_counts().total() as f64;
        assert!(
            (1.2e8..2.3e8).contains(&total),
            "SwinV2-MoE total {total} should be ~173M"
        );
    }

    #[test]
    fn llama_moe_head_dim_is_128() {
        for size in [
            LlamaMoeSize::Small,
            LlamaMoeSize::Medium,
            LlamaMoeSize::Large,
        ] {
            let cfg = llama_moe(size, 64, 2048);
            assert_eq!(cfg.head_dim(), 128);
            assert_eq!(cfg.num_moe_layers(), 24);
        }
    }

    #[test]
    fn llama_moe_scales_with_expert_count() {
        let small = llama_moe(LlamaMoeSize::Medium, 32, 2048);
        let large = llama_moe(LlamaMoeSize::Medium, 1024, 2048);
        assert!(large.param_counts().total() > 20 * small.param_counts().total());
    }

    #[test]
    fn tiny_presets_mirror_structures() {
        assert_eq!(tiny_lm_8e().num_experts(), 8);
        assert_eq!(tiny_lm_16e().num_experts(), 16);
        assert_eq!(tiny_lm_8e().num_moe_layers(), 2);
    }
}
