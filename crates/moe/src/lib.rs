//! # moc-moe — MoE model substrate for the MoC-System reproduction
//!
//! This crate describes sparse Mixture-of-Experts transformer models at the
//! level of detail the checkpointing system needs:
//!
//! * [`MoeModelConfig`] — architecture configuration with a builder and the
//!   Table-1 [`presets`] of the paper (GPT-125M-8E, GPT-350M-16E,
//!   SwinV2-MoE, LLaMA-like MoE scaling models);
//! * [`params`] — parameter inventory and checkpoint sizing (Eq. 5/6,
//!   Fig. 2 composition);
//! * [`modules`] — the unit-of-sharding module enumeration (whole experts,
//!   whole non-expert layers);
//! * [`gating`] — noisy top-k softmax gating with expert-capacity token
//!   dropping (Eq. 1–2);
//! * [`routing`] — deterministic expert-load models and the
//!   unsaved-update tracker that feeds the PLT metric (Eq. 7).
//!
//! # Examples
//!
//! ```
//! use moc_moe::presets;
//!
//! let cfg = presets::gpt_350m_16e();
//! let full = cfg.full_checkpoint_bytes();
//! let pec = cfg.pec_checkpoint_bytes(1);
//! assert!(pec < full);
//! println!("PEC K=1 keeps {:.1}% of the checkpoint", 100.0 * pec as f64 / full as f64);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod gating;
pub mod modules;
pub mod params;
pub mod presets;
pub mod routing;

pub use config::{ConfigError, MoeModelConfig, MoeModelConfigBuilder, StateBytes};
pub use modules::{ExpertId, ModuleDesc, ModuleKind};
pub use params::{CheckpointComposition, ParamCounts};
pub use routing::{ExpertLoadTracker, LoadModel, LoadProfile};
