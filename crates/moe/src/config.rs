//! Architecture configuration for sparse Mixture-of-Experts transformer models.
//!
//! A [`MoeModelConfig`] describes everything the checkpointing system needs to
//! know about a model: its layer structure, which feed-forward sublayers are
//! replaced by MoE layers, how many experts each MoE layer holds, and how many
//! bytes each parameter contributes to a checkpoint (weight bytes `B_w` and
//! optimizer-state bytes `B_o`, following Eq. 5 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes contributed by a single parameter to a checkpoint.
///
/// The paper's setting (Megatron-DeepSpeed mixed-precision training with
/// Adam) stores bf16 weights (2 bytes) and fp32 optimizer states — master
/// weight, first moment and second moment (12 bytes) — reproducing the
/// checkpoint composition of Fig. 2 (≈12% expert weights, 2% non-expert
/// weights, 74% expert optimizer, 12% non-expert optimizer for
/// GPT-350M-16E).
///
/// # Examples
///
/// ```
/// use moc_moe::StateBytes;
/// let b = StateBytes::MIXED_PRECISION_ADAM;
/// assert_eq!(b.weight, 2);
/// assert_eq!(b.optimizer, 12);
/// assert_eq!(b.total(), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateBytes {
    /// Bytes per parameter for the learnable weight (`B_w`).
    pub weight: u64,
    /// Bytes per parameter for the optimizer state (`B_o`).
    pub optimizer: u64,
}

impl StateBytes {
    /// bf16 weights + fp32 Adam (master weight, momentum, variance).
    pub const MIXED_PRECISION_ADAM: StateBytes = StateBytes {
        weight: 2,
        optimizer: 12,
    };

    /// fp32 weights + fp32 Adam moments (no separate master copy).
    pub const FP32_ADAM: StateBytes = StateBytes {
        weight: 4,
        optimizer: 8,
    };

    /// Creates a new byte description.
    pub fn new(weight: u64, optimizer: u64) -> Self {
        Self { weight, optimizer }
    }

    /// Total bytes per parameter (`B_w + B_o`).
    pub fn total(&self) -> u64 {
        self.weight + self.optimizer
    }
}

impl Default for StateBytes {
    fn default() -> Self {
        Self::MIXED_PRECISION_ADAM
    }
}

/// Error returned when a [`MoeModelConfigBuilder`] describes an invalid model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural field was zero that must be positive.
    ZeroField(&'static str),
    /// An MoE layer index referenced a transformer layer that does not exist.
    MoeLayerOutOfRange {
        /// The offending MoE layer index.
        index: usize,
        /// The model's layer count.
        num_layers: usize,
    },
    /// The same transformer layer was marked MoE twice.
    DuplicateMoeLayer(usize),
    /// `top_k` exceeds the number of experts.
    TopKTooLarge {
        /// The requested gate fan-out.
        top_k: usize,
        /// The configured expert count.
        num_experts: usize,
    },
    /// Hidden size is not divisible by the number of attention heads.
    HeadsDoNotDivideHidden {
        /// The hidden dimension.
        hidden: usize,
        /// The head count.
        heads: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField(name) => write!(f, "field `{name}` must be positive"),
            ConfigError::MoeLayerOutOfRange { index, num_layers } => write!(
                f,
                "moe layer index {index} out of range for {num_layers} layers"
            ),
            ConfigError::DuplicateMoeLayer(i) => write!(f, "duplicate moe layer index {i}"),
            ConfigError::TopKTooLarge { top_k, num_experts } => {
                write!(f, "top_k {top_k} exceeds expert count {num_experts}")
            }
            ConfigError::HeadsDoNotDivideHidden { hidden, heads } => {
                write!(f, "hidden size {hidden} not divisible by {heads} heads")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete architectural description of a sparse-MoE transformer.
///
/// Construct via [`MoeModelConfig::builder`] or use a preset from
/// [`crate::presets`].
///
/// # Examples
///
/// ```
/// use moc_moe::MoeModelConfig;
/// let cfg = MoeModelConfig::builder("tiny")
///     .num_layers(4)
///     .hidden_size(64)
///     .num_heads(4)
///     .vocab_size(512)
///     .max_seq_len(128)
///     .moe_every_other_layer()
///     .num_experts(8)
///     .top_k(2)
///     .build()?;
/// assert_eq!(cfg.moe_layer_indices(), &[1, 3]);
/// assert_eq!(cfg.num_moe_layers(), 2);
/// # Ok::<(), moc_moe::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeModelConfig {
    name: String,
    num_layers: usize,
    hidden_size: usize,
    num_heads: usize,
    ffn_mult: usize,
    vocab_size: usize,
    max_seq_len: usize,
    moe_layer_indices: Vec<usize>,
    num_experts: usize,
    top_k: usize,
    capacity_factor: f64,
    bytes: StateBytes,
}

impl MoeModelConfig {
    /// Starts building a configuration with the given model name.
    pub fn builder(name: impl Into<String>) -> MoeModelConfigBuilder {
        MoeModelConfigBuilder::new(name)
    }

    /// Human-readable model name (e.g. `"GPT-350M-16E"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of transformer layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Model (hidden) dimension.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head dimension (`hidden_size / num_heads`).
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// FFN intermediate-size multiplier (intermediate = `ffn_mult * hidden`).
    pub fn ffn_mult(&self) -> usize {
        self.ffn_mult
    }

    /// FFN intermediate dimension.
    pub fn ffn_intermediate(&self) -> usize {
        self.ffn_mult * self.hidden_size
    }

    /// Vocabulary size (token embedding rows).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Maximum (trained) sequence length; sizes the position embedding.
    pub fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    /// Indices (into `0..num_layers`) of layers whose FFN is an MoE layer.
    pub fn moe_layer_indices(&self) -> &[usize] {
        &self.moe_layer_indices
    }

    /// Number of MoE layers (`N_moe` in the paper).
    pub fn num_moe_layers(&self) -> usize {
        self.moe_layer_indices.len()
    }

    /// Experts per MoE layer (`N` in the paper).
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// Experts activated per token by the gate (`TopK` in Eq. 7).
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Expert capacity factor controlling token dropping (Section 3.1.2).
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// Checkpoint byte contributions per parameter.
    pub fn bytes(&self) -> StateBytes {
        self.bytes
    }

    /// Returns `true` if the layer at `index` hosts an MoE FFN.
    pub fn is_moe_layer(&self, index: usize) -> bool {
        self.moe_layer_indices.binary_search(&index).is_ok()
    }

    /// Position of `layer` among the MoE layers (the `l` of sequential
    /// selection), or `None` for dense layers.
    pub fn moe_layer_position(&self, layer: usize) -> Option<usize> {
        self.moe_layer_indices.binary_search(&layer).ok()
    }

    /// Total number of experts across all MoE layers.
    pub fn total_experts(&self) -> usize {
        self.num_moe_layers() * self.num_experts
    }
}

/// Builder for [`MoeModelConfig`]; see [`MoeModelConfig::builder`].
#[derive(Debug, Clone)]
pub struct MoeModelConfigBuilder {
    name: String,
    num_layers: usize,
    hidden_size: usize,
    num_heads: usize,
    ffn_mult: usize,
    vocab_size: usize,
    max_seq_len: usize,
    moe_layers: MoeLayerSpec,
    num_experts: usize,
    top_k: usize,
    capacity_factor: f64,
    bytes: StateBytes,
}

#[derive(Debug, Clone)]
enum MoeLayerSpec {
    EveryOther,
    Every(usize),
    Explicit(Vec<usize>),
    None,
}

impl MoeModelConfigBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            num_layers: 12,
            hidden_size: 768,
            num_heads: 12,
            ffn_mult: 4,
            vocab_size: 50_257,
            max_seq_len: 2048,
            moe_layers: MoeLayerSpec::EveryOther,
            num_experts: 8,
            top_k: 1,
            capacity_factor: 1.0,
            bytes: StateBytes::MIXED_PRECISION_ADAM,
        }
    }

    /// Sets the number of transformer layers.
    pub fn num_layers(mut self, n: usize) -> Self {
        self.num_layers = n;
        self
    }

    /// Sets the hidden (model) dimension.
    pub fn hidden_size(mut self, h: usize) -> Self {
        self.hidden_size = h;
        self
    }

    /// Sets the number of attention heads.
    pub fn num_heads(mut self, h: usize) -> Self {
        self.num_heads = h;
        self
    }

    /// Sets the FFN intermediate multiplier (default 4).
    pub fn ffn_mult(mut self, m: usize) -> Self {
        self.ffn_mult = m;
        self
    }

    /// Sets the vocabulary size.
    pub fn vocab_size(mut self, v: usize) -> Self {
        self.vocab_size = v;
        self
    }

    /// Sets the maximum sequence length.
    pub fn max_seq_len(mut self, s: usize) -> Self {
        self.max_seq_len = s;
        self
    }

    /// Places an MoE layer at every other transformer layer (odd indices),
    /// the GPT-MoE convention used by DeepSpeed-MoE.
    pub fn moe_every_other_layer(mut self) -> Self {
        self.moe_layers = MoeLayerSpec::EveryOther;
        self
    }

    /// Places an MoE layer every `stride` layers starting at `stride - 1`.
    pub fn moe_every(mut self, stride: usize) -> Self {
        self.moe_layers = MoeLayerSpec::Every(stride);
        self
    }

    /// Uses an explicit list of MoE layer indices.
    pub fn moe_layer_indices(mut self, indices: Vec<usize>) -> Self {
        self.moe_layers = MoeLayerSpec::Explicit(indices);
        self
    }

    /// Builds a dense model with no MoE layers.
    pub fn dense(mut self) -> Self {
        self.moe_layers = MoeLayerSpec::None;
        self
    }

    /// Sets the number of experts per MoE layer.
    pub fn num_experts(mut self, n: usize) -> Self {
        self.num_experts = n;
        self
    }

    /// Sets the gate's top-k.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Sets the expert capacity factor.
    pub fn capacity_factor(mut self, c: f64) -> Self {
        self.capacity_factor = c;
        self
    }

    /// Sets the per-parameter checkpoint byte contributions.
    pub fn bytes(mut self, b: StateBytes) -> Self {
        self.bytes = b;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any structural field is zero, an MoE
    /// layer index is out of range or duplicated, `top_k > num_experts`, or
    /// the head count does not divide the hidden size.
    pub fn build(self) -> Result<MoeModelConfig, ConfigError> {
        if self.num_layers == 0 {
            return Err(ConfigError::ZeroField("num_layers"));
        }
        if self.hidden_size == 0 {
            return Err(ConfigError::ZeroField("hidden_size"));
        }
        if self.num_heads == 0 {
            return Err(ConfigError::ZeroField("num_heads"));
        }
        if self.vocab_size == 0 {
            return Err(ConfigError::ZeroField("vocab_size"));
        }
        if self.max_seq_len == 0 {
            return Err(ConfigError::ZeroField("max_seq_len"));
        }
        if self.ffn_mult == 0 {
            return Err(ConfigError::ZeroField("ffn_mult"));
        }
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(ConfigError::HeadsDoNotDivideHidden {
                hidden: self.hidden_size,
                heads: self.num_heads,
            });
        }
        let mut indices = match self.moe_layers {
            MoeLayerSpec::EveryOther => (0..self.num_layers).filter(|i| i % 2 == 1).collect(),
            MoeLayerSpec::Every(stride) => {
                if stride == 0 {
                    return Err(ConfigError::ZeroField("moe stride"));
                }
                (0..self.num_layers)
                    .filter(|i| i % stride == stride - 1)
                    .collect()
            }
            MoeLayerSpec::Explicit(v) => v,
            MoeLayerSpec::None => Vec::new(),
        };
        indices.sort_unstable();
        for pair in indices.windows(2) {
            if pair[0] == pair[1] {
                return Err(ConfigError::DuplicateMoeLayer(pair[0]));
            }
        }
        if let Some(&max) = indices.last() {
            if max >= self.num_layers {
                return Err(ConfigError::MoeLayerOutOfRange {
                    index: max,
                    num_layers: self.num_layers,
                });
            }
        }
        if !indices.is_empty() {
            if self.num_experts == 0 {
                return Err(ConfigError::ZeroField("num_experts"));
            }
            if self.top_k == 0 {
                return Err(ConfigError::ZeroField("top_k"));
            }
            if self.top_k > self.num_experts {
                return Err(ConfigError::TopKTooLarge {
                    top_k: self.top_k,
                    num_experts: self.num_experts,
                });
            }
        }
        Ok(MoeModelConfig {
            name: self.name,
            num_layers: self.num_layers,
            hidden_size: self.hidden_size,
            num_heads: self.num_heads,
            ffn_mult: self.ffn_mult,
            vocab_size: self.vocab_size,
            max_seq_len: self.max_seq_len,
            moe_layer_indices: indices,
            num_experts: self.num_experts,
            top_k: self.top_k,
            capacity_factor: self.capacity_factor,
            bytes: self.bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_produce_every_other_moe() {
        let cfg = MoeModelConfig::builder("t").build().unwrap();
        assert_eq!(cfg.moe_layer_indices(), &[1, 3, 5, 7, 9, 11]);
        assert_eq!(cfg.num_moe_layers(), 6);
        assert!(cfg.is_moe_layer(1));
        assert!(!cfg.is_moe_layer(0));
    }

    #[test]
    fn moe_layer_position_is_rank_among_moe_layers() {
        let cfg = MoeModelConfig::builder("t").build().unwrap();
        assert_eq!(cfg.moe_layer_position(1), Some(0));
        assert_eq!(cfg.moe_layer_position(3), Some(1));
        assert_eq!(cfg.moe_layer_position(0), None);
    }

    #[test]
    fn zero_layers_rejected() {
        let err = MoeModelConfig::builder("t").num_layers(0).build();
        assert_eq!(err, Err(ConfigError::ZeroField("num_layers")));
    }

    #[test]
    fn top_k_exceeding_experts_rejected() {
        let err = MoeModelConfig::builder("t").num_experts(4).top_k(5).build();
        assert_eq!(
            err,
            Err(ConfigError::TopKTooLarge {
                top_k: 5,
                num_experts: 4
            })
        );
    }

    #[test]
    fn out_of_range_moe_index_rejected() {
        let err = MoeModelConfig::builder("t")
            .num_layers(4)
            .moe_layer_indices(vec![1, 9])
            .build();
        assert_eq!(
            err,
            Err(ConfigError::MoeLayerOutOfRange {
                index: 9,
                num_layers: 4
            })
        );
    }

    #[test]
    fn duplicate_moe_index_rejected() {
        let err = MoeModelConfig::builder("t")
            .moe_layer_indices(vec![1, 1])
            .build();
        assert_eq!(err, Err(ConfigError::DuplicateMoeLayer(1)));
    }

    #[test]
    fn heads_must_divide_hidden() {
        let err = MoeModelConfig::builder("t")
            .hidden_size(100)
            .num_heads(3)
            .build();
        assert!(matches!(
            err,
            Err(ConfigError::HeadsDoNotDivideHidden { .. })
        ));
    }

    #[test]
    fn dense_model_has_no_experts() {
        let cfg = MoeModelConfig::builder("d").dense().build().unwrap();
        assert_eq!(cfg.num_moe_layers(), 0);
        assert_eq!(cfg.total_experts(), 0);
    }

    #[test]
    fn moe_every_stride() {
        let cfg = MoeModelConfig::builder("t")
            .num_layers(9)
            .moe_every(3)
            .build()
            .unwrap();
        assert_eq!(cfg.moe_layer_indices(), &[2, 5, 8]);
    }

    #[test]
    fn state_bytes_total() {
        assert_eq!(StateBytes::MIXED_PRECISION_ADAM.total(), 14);
        assert_eq!(StateBytes::FP32_ADAM.total(), 12);
        assert_eq!(StateBytes::default(), StateBytes::MIXED_PRECISION_ADAM);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConfigError::TopKTooLarge {
            top_k: 3,
            num_experts: 2,
        };
        assert!(e.to_string().contains("top_k 3"));
    }
}
