//! Noisy top-k softmax gating (Eq. 1–2) and expert-capacity token dropping.
//!
//! This module provides the *mathematical* gate used both by the routing
//! simulator (for PLT accounting) and by the real training lab in
//! `moc-train`. Given per-expert logits for a token, [`top_k_gate`] returns
//! the selected experts with renormalised softmax weights; [`Dispatcher`]
//! applies capacity limits (GShard-style) and reports dropped tokens.

use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Numerically stable softmax over a logit slice.
///
/// # Examples
///
/// ```
/// let p = moc_moe::gating::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Selects the top-`k` experts by gate probability.
///
/// Returns `(expert index, renormalised weight)` pairs sorted by descending
/// weight. Ties are broken toward the lower expert index so the result is
/// deterministic.
///
/// # Panics
///
/// Panics if `k == 0` or `k > logits.len()`.
pub fn top_k_gate(logits: &[f64], k: usize) -> Vec<(usize, f64)> {
    assert!(
        k >= 1 && k <= logits.len(),
        "invalid k {k} for {} experts",
        logits.len()
    );
    let probs = softmax(logits);
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| {
        probs[b]
            .partial_cmp(&probs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let chosen = &order[..k];
    let norm: f64 = chosen.iter().map(|&i| probs[i]).sum();
    chosen
        .iter()
        .map(|&i| {
            (
                i,
                if norm > 0.0 {
                    probs[i] / norm
                } else {
                    1.0 / k as f64
                },
            )
        })
        .collect()
}

/// Configuration of a gating network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingConfig {
    /// Number of experts `N`.
    pub num_experts: usize,
    /// Experts activated per token.
    pub top_k: usize,
    /// Standard deviation of the Gaussian gate noise (`ε` in Eq. 2).
    pub noise_std: f64,
    /// Capacity factor: each expert accepts at most
    /// `ceil(capacity_factor · top_k · tokens / N)` tokens.
    pub capacity_factor: f64,
}

impl GatingConfig {
    /// Per-expert token capacity for a batch of `tokens` tokens.
    pub fn capacity(&self, tokens: usize) -> usize {
        let ideal =
            self.capacity_factor * self.top_k as f64 * tokens as f64 / self.num_experts as f64;
        ideal.ceil() as usize
    }
}

/// Outcome of dispatching one batch of tokens through a gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchOutcome {
    /// Tokens accepted per expert (post-capacity).
    pub accepted: Vec<u64>,
    /// Tokens dropped per expert due to capacity overflow.
    pub dropped: Vec<u64>,
}

impl DispatchOutcome {
    /// Total accepted token-assignments.
    pub fn total_accepted(&self) -> u64 {
        self.accepted.iter().sum()
    }

    /// Total dropped token-assignments.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }
}

/// Applies noisy top-k gating with capacity limits over token logits.
///
/// The dispatcher is deterministic for a given seed: the Gaussian noise of
/// Eq. 2 comes from a seeded RNG.
#[derive(Debug)]
pub struct Dispatcher {
    config: GatingConfig,
    rng: rand::rngs::StdRng,
}

impl Dispatcher {
    /// Creates a dispatcher with the given gate configuration and RNG seed.
    pub fn new(config: GatingConfig, seed: u64) -> Self {
        Self {
            config,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// The gate configuration.
    pub fn config(&self) -> &GatingConfig {
        &self.config
    }

    /// Dispatches a batch of tokens, each described by its expert logits.
    ///
    /// Tokens are processed in order; once an expert is at capacity,
    /// further assignments to it are dropped (the token's weight on that
    /// expert is lost, matching GShard's overflow semantics).
    ///
    /// # Panics
    ///
    /// Panics if any token's logit slice length differs from `num_experts`.
    pub fn dispatch(&mut self, token_logits: &[Vec<f64>]) -> DispatchOutcome {
        let n = self.config.num_experts;
        let cap = self.config.capacity(token_logits.len());
        let mut accepted = vec![0u64; n];
        let mut dropped = vec![0u64; n];
        for logits in token_logits {
            assert_eq!(logits.len(), n, "logit arity mismatch");
            let noisy: Vec<f64> = logits
                .iter()
                .map(|&x| x + self.gauss() * self.config.noise_std)
                .collect();
            for (expert, _w) in top_k_gate(&noisy, self.config.top_k) {
                if accepted[expert] < cap as u64 {
                    accepted[expert] += 1;
                } else {
                    dropped[expert] += 1;
                }
            }
        }
        DispatchOutcome { accepted, dropped }
    }

    /// Standard normal sample (Box–Muller).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[0.3, -1.2, 4.0, 0.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn top1_picks_argmax() {
        let g = top_k_gate(&[0.1, 5.0, 0.2], 1);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].0, 1);
        assert!((g[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top2_weights_renormalised() {
        let g = top_k_gate(&[1.0, 2.0, 3.0, -5.0], 2);
        assert_eq!(g[0].0, 2);
        assert_eq!(g[1].0, 1);
        let sum: f64 = g.iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_ties_break_to_lower_index() {
        let g = top_k_gate(&[1.0, 1.0, 1.0], 2);
        assert_eq!(g[0].0, 0);
        assert_eq!(g[1].0, 1);
    }

    #[test]
    #[should_panic(expected = "invalid k")]
    fn top_k_zero_panics() {
        top_k_gate(&[1.0], 0);
    }

    #[test]
    fn capacity_formula() {
        let cfg = GatingConfig {
            num_experts: 8,
            top_k: 1,
            noise_std: 0.0,
            capacity_factor: 1.0,
        };
        assert_eq!(cfg.capacity(64), 8);
        let cfg2 = GatingConfig {
            capacity_factor: 1.25,
            ..cfg
        };
        assert_eq!(cfg2.capacity(64), 10);
    }

    #[test]
    fn dispatch_without_noise_is_deterministic() {
        let cfg = GatingConfig {
            num_experts: 4,
            top_k: 1,
            noise_std: 0.0,
            capacity_factor: 4.0,
        };
        let logits: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                let mut l = vec![0.0; 4];
                l[i % 4] = 3.0;
                l
            })
            .collect();
        let a = Dispatcher::new(cfg, 1).dispatch(&logits);
        let b = Dispatcher::new(cfg, 2).dispatch(&logits);
        assert_eq!(a, b);
        assert_eq!(a.accepted, vec![4, 4, 4, 4]);
        assert_eq!(a.total_dropped(), 0);
    }

    #[test]
    fn dispatch_drops_over_capacity() {
        let cfg = GatingConfig {
            num_experts: 2,
            top_k: 1,
            noise_std: 0.0,
            capacity_factor: 0.5,
        };
        // All 8 tokens want expert 0; capacity = ceil(0.5*1*8/2) = 2.
        let logits: Vec<Vec<f64>> = (0..8).map(|_| vec![5.0, 0.0]).collect();
        let out = Dispatcher::new(cfg, 0).dispatch(&logits);
        assert_eq!(out.accepted[0], 2);
        assert_eq!(out.dropped[0], 6);
    }

    #[test]
    fn dispatch_total_assignments_conserved() {
        let cfg = GatingConfig {
            num_experts: 4,
            top_k: 2,
            noise_std: 0.5,
            capacity_factor: 1.0,
        };
        let logits: Vec<Vec<f64>> = (0..32)
            .map(|i| vec![i as f64 % 3.0, 1.0, 0.5, 2.0])
            .collect();
        let out = Dispatcher::new(cfg, 7).dispatch(&logits);
        assert_eq!(out.total_accepted() + out.total_dropped(), 32 * 2);
    }

    #[test]
    fn same_seed_same_outcome_with_noise() {
        let cfg = GatingConfig {
            num_experts: 4,
            top_k: 1,
            noise_std: 1.0,
            capacity_factor: 2.0,
        };
        let logits: Vec<Vec<f64>> = (0..32).map(|_| vec![0.0; 4]).collect();
        let a = Dispatcher::new(cfg, 42).dispatch(&logits);
        let b = Dispatcher::new(cfg, 42).dispatch(&logits);
        assert_eq!(a, b);
    }
}
