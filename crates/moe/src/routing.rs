//! Expert-load models and the unsaved-update tracker feeding PLT.
//!
//! The PLT metric (Eq. 7) needs, for every MoE layer and expert, the number
//! of tokens whose updates would be lost if training rolled back to the
//! expert's last checkpointed state. [`ExpertLoadTracker`] accumulates
//! routed-token counts per expert between checkpoints; [`LoadModel`]
//! produces deterministic per-iteration expert loads (balanced or skewed)
//! without running a real model, which the simulators use.

use crate::modules::ExpertId;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// How token load distributes across experts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadProfile {
    /// Every expert receives the same number of tokens (auxiliary-loss
    /// balanced training, the common steady state).
    Balanced,
    /// Zipf-like skew with the given exponent (> 0): expert `i` receives
    /// load ∝ `1 / (i+1)^s`, with the hot expert rotating over iterations
    /// to model routing drift.
    Zipf {
        /// Skew exponent `s`.
        exponent: f64,
    },
    /// Random multinomial loads re-drawn each iteration (seeded).
    Noisy {
        /// Relative jitter in `[0, 1)` around the balanced share.
        jitter: f64,
    },
}

/// Deterministic per-iteration expert token-load generator.
#[derive(Debug, Clone)]
pub struct LoadModel {
    num_layers: usize,
    num_experts: usize,
    tokens_per_iteration: u64,
    top_k: usize,
    profile: LoadProfile,
    seed: u64,
}

impl LoadModel {
    /// Creates a load model for `num_layers` MoE layers of `num_experts`
    /// experts, where each iteration routes `tokens_per_iteration` tokens
    /// through each MoE layer with fan-out `top_k`.
    pub fn new(
        num_layers: usize,
        num_experts: usize,
        tokens_per_iteration: u64,
        top_k: usize,
        profile: LoadProfile,
        seed: u64,
    ) -> Self {
        assert!(num_experts > 0, "need at least one expert");
        Self {
            num_layers,
            num_experts,
            tokens_per_iteration,
            top_k,
            profile,
            seed,
        }
    }

    /// Number of MoE layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Experts per layer.
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// Tokens routed per layer per iteration.
    pub fn tokens_per_iteration(&self) -> u64 {
        self.tokens_per_iteration
    }

    /// Gate fan-out.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Per-expert token loads of `layer` at `iteration`.
    ///
    /// The sum over experts always equals
    /// `tokens_per_iteration · top_k` (assignments, not unique tokens).
    pub fn loads(&self, iteration: u64, layer: usize) -> Vec<u64> {
        let n = self.num_experts;
        let total = self.tokens_per_iteration * self.top_k as u64;
        match self.profile {
            LoadProfile::Balanced => {
                let base = total / n as u64;
                let rem = (total % n as u64) as usize;
                (0..n).map(|i| base + if i < rem { 1 } else { 0 }).collect()
            }
            LoadProfile::Zipf { exponent } => {
                let rot = (iteration as usize + layer) % n;
                let weights: Vec<f64> = (0..n)
                    .map(|i| {
                        let rank = (i + n - rot) % n;
                        1.0 / ((rank + 1) as f64).powf(exponent)
                    })
                    .collect();
                proportional_split(total, &weights)
            }
            LoadProfile::Noisy { jitter } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    self.seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(iteration)
                        .wrapping_add((layer as u64) << 32),
                );
                let weights: Vec<f64> = (0..n)
                    .map(|_| 1.0 + jitter * (2.0 * rng.random::<f64>() - 1.0))
                    .collect();
                proportional_split(total, &weights)
            }
        }
    }
}

/// Splits `total` into integer parts proportional to `weights`,
/// distributing the rounding remainder to the largest fractional parts.
fn proportional_split(total: u64, weights: &[f64]) -> Vec<u64> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || weights.is_empty() {
        return vec![0; weights.len()];
    }
    let mut parts: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as f64 * w / sum;
        let floor = exact.floor() as u64;
        parts.push(floor);
        assigned += floor;
        fracs.push((i, exact - floor as f64));
    }
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut leftover = total - assigned;
    for (i, _) in fracs {
        if leftover == 0 {
            break;
        }
        parts[i] += 1;
        leftover -= 1;
    }
    parts
}

/// Tracks, per expert, the token-update volume not yet captured by any
/// checkpoint — the `L_{i,j}` inputs of the PLT metric (Eq. 7) and the
/// priority signal for load-aware selection (Section 3.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertLoadTracker {
    num_layers: usize,
    num_experts: usize,
    /// `unsaved[layer][expert]`: token-assignments routed since the
    /// expert's last save.
    unsaved: Vec<Vec<u64>>,
    /// Lifetime token-assignments per layer (the `T_i · TopK_i` denominator
    /// accumulates from this).
    lifetime: Vec<u64>,
}

impl ExpertLoadTracker {
    /// Creates a tracker for `num_layers` MoE layers × `num_experts`.
    pub fn new(num_layers: usize, num_experts: usize) -> Self {
        Self {
            num_layers,
            num_experts,
            unsaved: vec![vec![0; num_experts]; num_layers],
            lifetime: vec![0; num_layers],
        }
    }

    /// Number of MoE layers tracked.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Experts per layer tracked.
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// Records one iteration's routed loads for `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `loads.len() != num_experts` or `layer` is out of range.
    pub fn record(&mut self, layer: usize, loads: &[u64]) {
        assert_eq!(loads.len(), self.num_experts, "load arity mismatch");
        let row = &mut self.unsaved[layer];
        let mut sum = 0;
        for (slot, &l) in row.iter_mut().zip(loads) {
            *slot += l;
            sum += l;
        }
        self.lifetime[layer] += sum;
    }

    /// Marks an expert as saved: its unsaved counter resets to zero.
    pub fn mark_saved(&mut self, id: ExpertId) {
        self.unsaved[id.layer][id.expert] = 0;
    }

    /// Unsaved token-assignments for an expert.
    pub fn unsaved(&self, id: ExpertId) -> u64 {
        self.unsaved[id.layer][id.expert]
    }

    /// Unsaved token-assignments per expert of a layer.
    pub fn unsaved_row(&self, layer: usize) -> &[u64] {
        &self.unsaved[layer]
    }

    /// Lifetime token-assignments of a layer (`T_i · TopK_i` so far).
    pub fn lifetime(&self, layer: usize) -> u64 {
        self.lifetime[layer]
    }

    /// Experts of `layer` ordered by descending unsaved load — the
    /// load-aware selection order. Ties break toward lower expert indices.
    pub fn hottest_experts(&self, layer: usize) -> Vec<usize> {
        let row = &self.unsaved[layer];
        let mut order: Vec<usize> = (0..self.num_experts).collect();
        order.sort_by(|&a, &b| row[b].cmp(&row[a]).then(a.cmp(&b)));
        order
    }

    /// Sum of unsaved counters across all layers and experts.
    pub fn total_unsaved(&self) -> u64 {
        self.unsaved.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_loads_sum_and_spread() {
        let m = LoadModel::new(2, 8, 64, 1, LoadProfile::Balanced, 0);
        let loads = m.loads(0, 0);
        assert_eq!(loads.iter().sum::<u64>(), 64);
        assert!(loads.iter().all(|&l| l == 8));
    }

    #[test]
    fn balanced_handles_remainder() {
        let m = LoadModel::new(1, 3, 10, 1, LoadProfile::Balanced, 0);
        let loads = m.loads(5, 0);
        assert_eq!(loads.iter().sum::<u64>(), 10);
        assert_eq!(loads, vec![4, 3, 3]);
    }

    #[test]
    fn zipf_loads_skewed_and_conserved() {
        let m = LoadModel::new(1, 8, 800, 1, LoadProfile::Zipf { exponent: 1.2 }, 0);
        let loads = m.loads(0, 0);
        assert_eq!(loads.iter().sum::<u64>(), 800);
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max > 2 * min, "zipf should be skewed: {loads:?}");
    }

    #[test]
    fn zipf_hot_expert_rotates() {
        let m = LoadModel::new(1, 4, 400, 1, LoadProfile::Zipf { exponent: 1.0 }, 0);
        let hot0 = argmax(&m.loads(0, 0));
        let hot1 = argmax(&m.loads(1, 0));
        assert_ne!(hot0, hot1);
    }

    #[test]
    fn noisy_is_deterministic_per_seed() {
        let m1 = LoadModel::new(1, 8, 128, 2, LoadProfile::Noisy { jitter: 0.5 }, 9);
        let m2 = LoadModel::new(1, 8, 128, 2, LoadProfile::Noisy { jitter: 0.5 }, 9);
        assert_eq!(m1.loads(3, 0), m2.loads(3, 0));
        assert_eq!(m1.loads(3, 0).iter().sum::<u64>(), 256);
    }

    #[test]
    fn top_k_multiplies_assignments() {
        let m = LoadModel::new(1, 4, 100, 2, LoadProfile::Balanced, 0);
        assert_eq!(m.loads(0, 0).iter().sum::<u64>(), 200);
    }

    #[test]
    fn proportional_split_conserves_total() {
        let parts = proportional_split(100, &[0.5, 0.3, 0.2]);
        assert_eq!(parts.iter().sum::<u64>(), 100);
        assert_eq!(parts, vec![50, 30, 20]);
    }

    #[test]
    fn proportional_split_zero_weights() {
        assert_eq!(proportional_split(10, &[0.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn tracker_accumulates_and_resets() {
        let mut t = ExpertLoadTracker::new(2, 4);
        t.record(0, &[1, 2, 3, 4]);
        t.record(0, &[1, 2, 3, 4]);
        t.record(1, &[10, 0, 0, 0]);
        assert_eq!(t.unsaved(ExpertId::new(0, 3)), 8);
        assert_eq!(t.lifetime(0), 20);
        assert_eq!(t.lifetime(1), 10);
        t.mark_saved(ExpertId::new(0, 3));
        assert_eq!(t.unsaved(ExpertId::new(0, 3)), 0);
        // Lifetime is not affected by saves.
        assert_eq!(t.lifetime(0), 20);
        assert_eq!(t.total_unsaved(), (2 + 4 + 6) + 10);
    }

    #[test]
    fn hottest_experts_orders_by_unsaved() {
        let mut t = ExpertLoadTracker::new(1, 4);
        t.record(0, &[5, 20, 20, 1]);
        assert_eq!(t.hottest_experts(0), vec![1, 2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "load arity mismatch")]
    fn tracker_rejects_wrong_arity() {
        let mut t = ExpertLoadTracker::new(1, 4);
        t.record(0, &[1, 2]);
    }

    fn argmax(v: &[u64]) -> usize {
        v.iter()
            .enumerate()
            .max_by_key(|&(_, &x)| x)
            .map(|(i, _)| i)
            .unwrap()
    }
}
