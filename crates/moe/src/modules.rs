//! Module inventory: the unit-of-sharding view of a model.
//!
//! The fully sharded checkpointing strategies of Section 4 partition work at
//! module granularity — whole experts for the expert part (Section 4.1) and
//! whole layers (Attention / FFN / …) for the non-expert part (Section 4.2).
//! [`MoeModelConfig::modules`] enumerates those units with their checkpoint
//! byte sizes.

use crate::config::MoeModelConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of an expert: `(MoE-layer position, expert index)`.
///
/// The layer coordinate is the *position among MoE layers* (0-based `l` used
/// by sequential selection), not the transformer layer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExpertId {
    /// Position among the MoE layers (0-based).
    pub layer: usize,
    /// Expert index within the layer (0-based, `< N`).
    pub expert: usize,
}

impl ExpertId {
    /// Creates an expert id.
    pub fn new(layer: usize, expert: usize) -> Self {
        Self { layer, expert }
    }
}

impl fmt::Display for ExpertId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expert{}-{}", self.layer, self.expert)
    }
}

/// What kind of parameters a module holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Token + position embeddings (non-expert).
    Embedding,
    /// Attention sublayer of a transformer layer (non-expert).
    Attention {
        /// Transformer layer index.
        layer: usize,
    },
    /// Dense FFN sublayer (non-expert).
    DenseFfn {
        /// Transformer layer index.
        layer: usize,
    },
    /// MoE gating network (non-expert; saved in full).
    Gate {
        /// Transformer layer index.
        layer: usize,
    },
    /// LayerNorm parameters of a layer, folded together (non-expert).
    Norms {
        /// Transformer layer index, or `usize::MAX` for the final norm.
        layer: usize,
    },
    /// One expert FFN (expert part; the PEC unit).
    Expert(ExpertId),
}

impl ModuleKind {
    /// Whether this module belongs to the expert part of the model.
    pub fn is_expert(&self) -> bool {
        matches!(self, ModuleKind::Expert(_))
    }
}

/// A shardable unit of model state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleDesc {
    /// Stable name usable as a checkpoint key (e.g. `"layer3.expert5"`).
    pub name: String,
    /// What the module is.
    pub kind: ModuleKind,
    /// Parameter count of the module.
    pub params: u64,
    /// Weight bytes of the module in a checkpoint.
    pub weight_bytes: u64,
    /// Optimizer-state bytes of the module in a checkpoint.
    pub optimizer_bytes: u64,
}

impl ModuleDesc {
    /// Total checkpoint bytes of the module (weights + optimizer).
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.optimizer_bytes
    }
}

impl MoeModelConfig {
    /// Enumerates all shardable modules of the model with checkpoint sizes.
    ///
    /// Non-expert modules are emitted at layer granularity (the
    /// coarse-grained unit of Section 4.2); each expert is its own module
    /// (the unit of Sections 3 and 4.1).
    ///
    /// # Examples
    ///
    /// ```
    /// use moc_moe::presets;
    /// let cfg = presets::gpt_350m_16e();
    /// let mods = cfg.modules();
    /// let experts = mods.iter().filter(|m| m.kind.is_expert()).count();
    /// assert_eq!(experts, cfg.total_experts());
    /// ```
    pub fn modules(&self) -> Vec<ModuleDesc> {
        let h = self.hidden_size() as u64;
        let b = self.bytes();
        let counts = self.param_counts();
        let mut out = Vec::new();

        let mut push = |name: String, kind: ModuleKind, params: u64| {
            out.push(ModuleDesc {
                name,
                kind,
                params,
                weight_bytes: params * b.weight,
                optimizer_bytes: params * b.optimizer,
            });
        };

        push(
            "embedding".to_string(),
            ModuleKind::Embedding,
            counts.embedding,
        );

        let attn_params = 4 * h * h + 4 * h;
        let ffn_params = counts.per_expert;
        let n_exp = self.num_experts() as u64;
        for layer in 0..self.num_layers() {
            push(
                format!("layer{layer}.attention"),
                ModuleKind::Attention { layer },
                attn_params,
            );
            push(
                format!("layer{layer}.norms"),
                ModuleKind::Norms { layer },
                4 * h,
            );
            if let Some(pos) = self.moe_layer_position(layer) {
                push(
                    format!("layer{layer}.gate"),
                    ModuleKind::Gate { layer },
                    h * n_exp + n_exp,
                );
                for expert in 0..self.num_experts() {
                    push(
                        format!("layer{layer}.expert{expert}"),
                        ModuleKind::Expert(ExpertId::new(pos, expert)),
                        ffn_params,
                    );
                }
            } else {
                push(
                    format!("layer{layer}.ffn"),
                    ModuleKind::DenseFfn { layer },
                    ffn_params,
                );
            }
        }
        push(
            "final.norm".to_string(),
            ModuleKind::Norms { layer: usize::MAX },
            2 * h,
        );
        out
    }

    /// All expert ids of the model in `(layer, expert)` order.
    pub fn expert_ids(&self) -> Vec<ExpertId> {
        (0..self.num_moe_layers())
            .flat_map(|l| (0..self.num_experts()).map(move |e| ExpertId::new(l, e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn module_bytes_sum_to_full_checkpoint() {
        for cfg in [
            presets::gpt_125m_8e(),
            presets::gpt_350m_16e(),
            presets::swinv2_moe(),
        ] {
            let total: u64 = cfg.modules().iter().map(|m| m.total_bytes()).sum();
            assert_eq!(total, cfg.full_checkpoint_bytes(), "model {}", cfg.name());
        }
    }

    #[test]
    fn module_params_sum_to_param_counts() {
        let cfg = presets::gpt_125m_8e();
        let total: u64 = cfg.modules().iter().map(|m| m.params).sum();
        assert_eq!(total, cfg.param_counts().total());
    }

    #[test]
    fn expert_modules_match_expert_ids() {
        let cfg = presets::gpt_125m_8e();
        let experts: Vec<ExpertId> = cfg
            .modules()
            .into_iter()
            .filter_map(|m| match m.kind {
                ModuleKind::Expert(id) => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(experts, cfg.expert_ids());
    }

    #[test]
    fn expert_ids_are_layer_major() {
        let cfg = presets::tiny_lm_8e();
        let ids = cfg.expert_ids();
        assert_eq!(ids[0], ExpertId::new(0, 0));
        assert_eq!(ids[1], ExpertId::new(0, 1));
        assert_eq!(ids[8], ExpertId::new(1, 0));
        assert_eq!(ids.len(), cfg.total_experts());
    }

    #[test]
    fn module_names_are_unique() {
        let cfg = presets::gpt_350m_16e();
        let mods = cfg.modules();
        let mut names: Vec<&str> = mods.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn expert_id_display() {
        assert_eq!(ExpertId::new(3, 1).to_string(), "Expert3-1");
    }

    #[test]
    fn dense_layers_have_ffn_modules() {
        let cfg = presets::gpt_125m_8e();
        let dense = cfg
            .modules()
            .iter()
            .filter(|m| matches!(m.kind, ModuleKind::DenseFfn { .. }))
            .count();
        assert_eq!(dense, cfg.num_layers() - cfg.num_moe_layers());
    }
}
