//! Property-based tests of gating and load-model invariants.

use moc_moe::gating::{softmax, top_k_gate, Dispatcher, GatingConfig};
use moc_moe::{LoadModel, LoadProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn softmax_is_a_distribution(logits in proptest::collection::vec(-30.0f64..30.0, 1..32)) {
        let p = softmax(&logits);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn top_k_weights_renormalised_and_sorted(
        logits in proptest::collection::vec(-10.0f64..10.0, 2..16),
        k_frac in 0.0f64..1.0,
    ) {
        let k = 1 + ((logits.len() - 1) as f64 * k_frac) as usize;
        let gate = top_k_gate(&logits, k);
        prop_assert_eq!(gate.len(), k);
        let sum: f64 = gate.iter().map(|&(_, w)| w).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for pair in gate.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1 - 1e-12);
        }
        // Indices are distinct.
        let mut idx: Vec<usize> = gate.iter().map(|&(i, _)| i).collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), k);
    }

    #[test]
    fn dispatch_conserves_assignments(
        tokens in 1usize..64,
        experts in 1usize..8,
        cap in 0.25f64..4.0,
        seed in any::<u64>(),
    ) {
        let cfg = GatingConfig {
            num_experts: experts,
            top_k: 1,
            noise_std: 0.3,
            capacity_factor: cap,
        };
        let logits: Vec<Vec<f64>> = (0..tokens)
            .map(|t| (0..experts).map(|e| ((t * 7 + e * 3) % 5) as f64).collect())
            .collect();
        let out = Dispatcher::new(cfg, seed).dispatch(&logits);
        prop_assert_eq!(out.total_accepted() + out.total_dropped(), tokens as u64);
        let cap_limit = cfg.capacity(tokens) as u64;
        prop_assert!(out.accepted.iter().all(|&a| a <= cap_limit));
    }

    #[test]
    fn load_models_conserve_token_assignments(
        tokens in 1u64..10_000,
        experts in 1usize..32,
        top_k in 1usize..3,
        iteration in 0u64..1000,
        profile_idx in 0usize..3,
    ) {
        let profile = match profile_idx {
            0 => LoadProfile::Balanced,
            1 => LoadProfile::Zipf { exponent: 1.1 },
            _ => LoadProfile::Noisy { jitter: 0.7 },
        };
        let m = LoadModel::new(2, experts, tokens, top_k, profile, 42);
        for layer in 0..2 {
            let loads = m.loads(iteration, layer);
            prop_assert_eq!(loads.len(), experts);
            prop_assert_eq!(loads.iter().sum::<u64>(), tokens * top_k as u64);
        }
    }
}
