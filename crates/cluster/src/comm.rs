//! Collective-communication cost models (α–β).
//!
//! Each collective over a group of `n` ranks moving `bytes` per rank costs
//! `α·steps + moved_bytes / bandwidth`, where the bandwidth is the NVLink
//! bandwidth if the group fits inside one node and the (much slower)
//! network bandwidth otherwise — the effect behind the paper's observation
//! that confining EP inside a node (Case 3) beats spanning nodes (Case 2).

use crate::hardware::GpuSpec;
use serde::{Deserialize, Serialize};

/// Where a process group physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupSpan {
    /// All ranks of the group share one node.
    IntraNode,
    /// The group crosses node boundaries.
    InterNode,
}

impl GroupSpan {
    /// Span of a group of `group_size` consecutive ranks on nodes of
    /// `gpus_per_node` GPUs.
    pub fn of(group_size: usize, gpus_per_node: usize) -> Self {
        if group_size <= gpus_per_node {
            GroupSpan::IntraNode
        } else {
            GroupSpan::InterNode
        }
    }
}

/// α–β collective cost model for one GPU class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    gpu: GpuSpec,
    gpus_per_node: usize,
}

impl CommModel {
    /// Creates a model for `gpu` on nodes of `gpus_per_node`.
    pub fn new(gpu: GpuSpec, gpus_per_node: usize) -> Self {
        Self { gpu, gpus_per_node }
    }

    fn bandwidth(&self, span: GroupSpan) -> f64 {
        match span {
            GroupSpan::IntraNode => self.gpu.nvlink_bytes_per_sec,
            GroupSpan::InterNode => self.gpu.network_bytes_per_sec,
        }
    }

    /// All-to-All over `n` ranks, `bytes` sent per rank.
    ///
    /// Each rank ships `bytes · (n−1)/n` off-chip; the transfer is
    /// bandwidth-bound on the slowest link class the group touches.
    pub fn all_to_all_secs(&self, bytes_per_rank: u64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let span = GroupSpan::of(n, self.gpus_per_node);
        let moved = bytes_per_rank as f64 * (n - 1) as f64 / n as f64;
        self.gpu.comm_latency_sec * (n as f64).log2().ceil() + moved / self.bandwidth(span)
    }

    /// Ring all-reduce of `bytes` over `n` ranks (2·(n−1)/n traffic factor).
    pub fn all_reduce_secs(&self, bytes: u64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let span = GroupSpan::of(n, self.gpus_per_node);
        let moved = 2.0 * bytes as f64 * (n - 1) as f64 / n as f64;
        2.0 * self.gpu.comm_latency_sec * (n - 1) as f64 + moved / self.bandwidth(span)
    }

    /// Reduce-scatter (or all-gather) of `bytes` over `n` ranks.
    pub fn reduce_scatter_secs(&self, bytes: u64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let span = GroupSpan::of(n, self.gpus_per_node);
        let moved = bytes as f64 * (n - 1) as f64 / n as f64;
        self.gpu.comm_latency_sec * (n - 1) as f64 + moved / self.bandwidth(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CommModel {
        CommModel::new(GpuSpec::a800(), 8)
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = model();
        assert_eq!(m.all_to_all_secs(1 << 30, 1), 0.0);
        assert_eq!(m.all_reduce_secs(1 << 30, 1), 0.0);
        assert_eq!(m.reduce_scatter_secs(1 << 30, 1), 0.0);
    }

    #[test]
    fn intra_node_beats_inter_node() {
        let m = model();
        // 8 ranks fit in a node; 16 ranks span two.
        let intra = m.all_to_all_secs(64 << 20, 8);
        let inter = m.all_to_all_secs(64 << 20, 16);
        assert!(
            inter > 5.0 * intra,
            "inter {inter} should dwarf intra {intra}"
        );
    }

    #[test]
    fn group_span_classification() {
        assert_eq!(GroupSpan::of(8, 8), GroupSpan::IntraNode);
        assert_eq!(GroupSpan::of(9, 8), GroupSpan::InterNode);
        assert_eq!(GroupSpan::of(2, 8), GroupSpan::IntraNode);
    }

    #[test]
    fn all_reduce_roughly_double_reduce_scatter() {
        let m = model();
        let ar = m.all_reduce_secs(256 << 20, 8);
        let rs = m.reduce_scatter_secs(256 << 20, 8);
        assert!((ar / rs - 2.0).abs() < 0.3, "ratio {}", ar / rs);
    }

    #[test]
    fn cost_scales_with_bytes() {
        let m = model();
        let t1 = m.all_to_all_secs(32 << 20, 16);
        let t2 = m.all_to_all_secs(64 << 20, 16);
        assert!(t2 > 1.8 * t1);
    }
}
