//! Compute-time model of one training iteration's forward+backward pass.
//!
//! Standard transformer FLOP accounting: the forward pass costs
//! `2·P_active` FLOPs per token (matmuls) plus the attention score terms;
//! backward costs twice the forward. MoE models only touch `top_k` experts
//! per token, so `P_active` uses `MoeModelConfig::active_params_per_token`.

use crate::comm::CommModel;
use crate::hardware::ClusterSpec;
use moc_core::ParallelTopology;
use moc_moe::MoeModelConfig;
use serde::{Deserialize, Serialize};

/// Workload description for one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationWorkload {
    /// Sequence length of the batch.
    pub seq_len: usize,
    /// Tokens processed per GPU per iteration (micro-batch × seq).
    pub tokens_per_gpu: u64,
}

impl IterationWorkload {
    /// The default workload used by the Table-2 case studies: 16 sequences
    /// of 2048 tokens per GPU.
    pub fn default_case() -> Self {
        Self {
            seq_len: 2048,
            tokens_per_gpu: 16 * 2048,
        }
    }
}

/// Breakdown of the F&B window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FbBreakdown {
    /// Pure compute seconds (forward + backward matmuls).
    pub compute_sec: f64,
    /// All-to-All dispatch/combine seconds (4 per MoE layer).
    pub all_to_all_sec: f64,
    /// Gradient reduce-scatter seconds (ZeRO-2 non-expert grads).
    pub grad_comm_sec: f64,
}

impl FbBreakdown {
    /// Total F&B seconds.
    pub fn total(&self) -> f64 {
        self.compute_sec + self.all_to_all_sec + self.grad_comm_sec
    }
}

/// Computes F&B and update durations for a model on a cluster.
#[derive(Debug, Clone)]
pub struct ComputeModel {
    cluster: ClusterSpec,
    comm: CommModel,
}

impl ComputeModel {
    /// Creates the model.
    pub fn new(cluster: ClusterSpec) -> Self {
        let comm = CommModel::new(cluster.gpu, cluster.gpus_per_node);
        Self { cluster, comm }
    }

    /// The cluster spec in use.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Forward+backward duration of one iteration.
    pub fn fb_breakdown(
        &self,
        model: &MoeModelConfig,
        topo: &ParallelTopology,
        work: &IterationWorkload,
    ) -> FbBreakdown {
        let tokens = work.tokens_per_gpu as f64;
        let active = model.active_params_per_token() as f64;
        // 6·T·P matmul FLOPs + 12·L·h·T·s attention-score FLOPs (causal).
        let matmul = 6.0 * tokens * active;
        let attn = 6.0
            * model.num_layers() as f64
            * model.hidden_size() as f64
            * tokens
            * work.seq_len as f64;
        // TP splits the per-GPU tensor work across tp GPUs (each DP rank
        // spans tp·pp GPUs working on the same tokens).
        let shard = (topo.tp() * topo.pp()) as f64;
        let compute_sec = (matmul + attn) / (self.cluster.gpu.effective_flops() * shard);

        // Four All-to-Alls per MoE layer (dispatch + combine, fwd + bwd),
        // each moving the layer's activation bytes per rank.
        let a2a_bytes = (work.tokens_per_gpu as usize * model.hidden_size() * 2) as u64; // bf16 activations
        let all_to_all_sec =
            4.0 * model.num_moe_layers() as f64 * self.comm.all_to_all_secs(a2a_bytes, topo.ep());

        // ZeRO-2 reduce-scatter of non-expert gradients over the DP group.
        let grad_bytes = model.param_counts().non_expert() * 2;
        let grad_comm_sec = self.comm.reduce_scatter_secs(grad_bytes, topo.dp());

        FbBreakdown {
            compute_sec,
            all_to_all_sec,
            grad_comm_sec,
        }
    }

    /// Weight-update duration: optimizer math over the rank's ZeRO shard
    /// is memory-bound and small next to F&B; modelled as shard bytes over
    /// HBM-class bandwidth plus a fixed kernel-launch floor.
    pub fn update_secs(&self, model: &MoeModelConfig, topo: &ParallelTopology) -> f64 {
        let counts = model.param_counts();
        let shard_params = counts.non_expert() as f64 / topo.dp() as f64
            + counts.expert() as f64 / topo.ep() as f64 / topo.expert_dp() as f64;
        // Adam reads/writes ~16 bytes per parameter at ~1 TB/s effective.
        0.02 + shard_params * 16.0 / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_moe::presets;

    fn fb(topo: ParallelTopology) -> FbBreakdown {
        let m = ComputeModel::new(ClusterSpec::a800());
        m.fb_breakdown(
            &presets::gpt_350m_16e(),
            &topo,
            &IterationWorkload::default_case(),
        )
    }

    #[test]
    fn fb_in_plausible_range() {
        // The paper's Case-1 F&B window is on the order of a second.
        let b = fb(ParallelTopology::case1());
        assert!((0.2..5.0).contains(&b.total()), "F&B {b:?} out of range");
    }

    #[test]
    fn case3_faster_than_case2() {
        // The paper: intra-node EP (Case 3) beats inter-node EP (Case 2).
        let c2 = fb(ParallelTopology::case2());
        let c3 = fb(ParallelTopology::case3());
        assert!(
            c3.all_to_all_sec < c2.all_to_all_sec,
            "case3 a2a {} must beat case2 {}",
            c3.all_to_all_sec,
            c2.all_to_all_sec
        );
        assert!(c3.total() < c2.total());
    }

    #[test]
    fn longer_sequences_cost_more() {
        let m = ComputeModel::new(ClusterSpec::a800());
        let topo = ParallelTopology::case1();
        let model = presets::gpt_350m_16e();
        let short = m.fb_breakdown(
            &model,
            &topo,
            &IterationWorkload {
                seq_len: 512,
                tokens_per_gpu: 16 * 512,
            },
        );
        let long = m.fb_breakdown(
            &model,
            &topo,
            &IterationWorkload {
                seq_len: 4096,
                tokens_per_gpu: 16 * 4096,
            },
        );
        assert!(long.total() > 4.0 * short.total());
    }

    #[test]
    fn h100_faster_than_a800() {
        let topo = ParallelTopology::case1();
        let model = presets::gpt_350m_16e();
        let work = IterationWorkload::default_case();
        let a = ComputeModel::new(ClusterSpec::a800()).fb_breakdown(&model, &topo, &work);
        let h = ComputeModel::new(ClusterSpec::h100()).fb_breakdown(&model, &topo, &work);
        assert!(h.compute_sec < 0.5 * a.compute_sec);
    }

    #[test]
    fn update_small_next_to_fb() {
        let m = ComputeModel::new(ClusterSpec::a800());
        let topo = ParallelTopology::case1();
        let model = presets::gpt_350m_16e();
        let u = m.update_secs(&model, &topo);
        let f = fb(topo).total();
        assert!(u < 0.5 * f, "update {u} vs fb {f}");
        assert!(u > 0.0);
    }
}
