//! Scaling and generalization sweeps — Fig. 13.
//!
//! The paper's ASTRA-sim study projects the three checkpointing methods
//! across GPU counts (32–1024), parallelism (DP+EP vs DP+EP+TP), hardware
//! (A800 vs H100), sequence lengths (512–4096) and model sizes
//! (hidden 1024/2048/3072), plus the total persist volume (Fig. 13(f)).
//! Each sweep point trains a LLaMA-like MoE model with one expert of every
//! layer per GPU, weak-scaling the model with the cluster.

use crate::compute::IterationWorkload;
use crate::hardware::ClusterSpec;
use crate::timeline::{Fig12Row, MethodSpec, TimelineModel};
use moc_core::topology::ParallelTopology;
use moc_moe::presets::{llama_moe, LlamaMoeSize};
use serde::{Deserialize, Serialize};

/// Parallelism flavours of Fig. 13(a-c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// ZeRO-2 DP + EP, one expert per GPU per layer.
    DpEp,
    /// DP + EP + 4-way tensor parallelism.
    DpEpTp4,
}

impl Parallelism {
    /// Tensor-parallel degree.
    pub fn tp(&self) -> usize {
        match self {
            Parallelism::DpEp => 1,
            Parallelism::DpEpTp4 => 4,
        }
    }
}

/// One point of a Fig. 13 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// GPUs in the cluster.
    pub gpus: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Model hidden size.
    pub hidden: usize,
    /// The Fig.-12-style method comparison at this point.
    pub row: Fig12Row,
    /// Total bytes persisted per checkpoint, full method ("Base-Persist").
    pub persist_bytes_base: u64,
    /// Total bytes persisted per checkpoint under MoC ("MoC-Persist").
    pub persist_bytes_moc: u64,
}

/// Configuration of a scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Parallelism flavour.
    pub parallelism: Parallelism,
    /// Model size class.
    pub size: LlamaMoeSize,
    /// Sequence length.
    pub seq_len: usize,
    /// Tokens per GPU per iteration.
    pub tokens_per_gpu: u64,
    /// MoC saves `1/moc_fraction` of the experts per checkpoint (the
    /// paper uses 8 — "save only 1/8 of the experts").
    pub moc_fraction: usize,
}

impl SweepConfig {
    /// The paper's default sweep: A800, DP+EP, medium model, seq 2048.
    pub fn default_a800() -> Self {
        Self {
            cluster: ClusterSpec::a800(),
            parallelism: Parallelism::DpEp,
            size: LlamaMoeSize::Medium,
            seq_len: 2048,
            tokens_per_gpu: 8 * 2048,
            moc_fraction: 8,
        }
    }

    /// The H100 variant of Fig. 13(c).
    pub fn default_h100() -> Self {
        Self {
            cluster: ClusterSpec::h100(),
            ..Self::default_a800()
        }
    }
}

/// Evaluates one sweep point at `gpus` GPUs.
///
/// # Panics
///
/// Panics if `gpus` is not divisible by the node size × tp degree.
pub fn scaling_point(config: &SweepConfig, gpus: usize) -> ScalingPoint {
    let tp = config.parallelism.tp();
    let gpn = config.cluster.gpus_per_node;
    assert!(gpus.is_multiple_of(gpn), "gpus must fill whole nodes");
    assert!(gpus.is_multiple_of(tp), "gpus must divide by tp");
    let nodes = gpus / gpn;
    let dp = gpus / tp;
    // One expert per GPU per layer in the DP+EP sweep; the TP variant
    // trains the same expert count (experts/GPU = tp).
    let num_experts = gpus;
    let ep = dp; // EP spans the whole DP group.
    let topo = ParallelTopology::new(nodes, gpn, dp, tp, 1, ep).expect("valid sweep topology");
    let model = llama_moe(config.size, num_experts, config.seq_len);

    let k_snapshot = (num_experts / config.moc_fraction).max(1);
    let k_persist = (k_snapshot / 4).max(1);
    let row = fig12_row_with_work(
        &format!("{gpus}gpu"),
        model.clone(),
        topo,
        config.cluster,
        k_snapshot,
        k_persist,
        IterationWorkload {
            seq_len: config.seq_len,
            tokens_per_gpu: config.tokens_per_gpu,
        },
    );

    ScalingPoint {
        gpus,
        seq_len: config.seq_len,
        hidden: config.size.hidden_size(),
        persist_bytes_base: model.full_checkpoint_bytes(),
        persist_bytes_moc: model.pec_checkpoint_bytes(k_persist),
        row,
    }
}

fn fig12_row_with_work(
    case: &str,
    model: moc_moe::MoeModelConfig,
    topo: ParallelTopology,
    cluster: ClusterSpec,
    k_snapshot: usize,
    k_persist: usize,
    work: IterationWorkload,
) -> Fig12Row {
    let tm = TimelineModel::new(model, topo, cluster, work);
    Fig12Row {
        case: case.to_string(),
        baseline: tm.timeline(&MethodSpec::baseline()),
        base_async: tm.timeline(&MethodSpec::base_async()),
        moc_async: tm.timeline(&MethodSpec::moc_async(k_snapshot, k_persist)),
    }
}

/// Sweeps GPU counts (Fig. 13(a-c, f)).
pub fn sweep_gpus(config: &SweepConfig, gpu_counts: &[usize]) -> Vec<ScalingPoint> {
    gpu_counts
        .iter()
        .map(|&g| scaling_point(config, g))
        .collect()
}

/// Sweeps sequence lengths at a fixed GPU count (Fig. 13(d)).
pub fn sweep_seq_len(base: &SweepConfig, gpus: usize, seq_lens: &[usize]) -> Vec<ScalingPoint> {
    seq_lens
        .iter()
        .map(|&s| {
            let tokens = base.tokens_per_gpu / base.seq_len as u64 * s as u64;
            let cfg = SweepConfig {
                seq_len: s,
                tokens_per_gpu: tokens,
                ..*base
            };
            scaling_point(&cfg, gpus)
        })
        .collect()
}

/// Sweeps model sizes at a fixed GPU count (Fig. 13(e)).
pub fn sweep_model_size(base: &SweepConfig, gpus: usize) -> Vec<ScalingPoint> {
    [
        LlamaMoeSize::Small,
        LlamaMoeSize::Medium,
        LlamaMoeSize::Large,
    ]
    .into_iter()
    .map(|size| scaling_point(&SweepConfig { size, ..*base }, gpus))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fb_grows_with_gpu_count() {
        // Fig. 13(a): the F&B window grows with scale (bigger All-to-All).
        let points = sweep_gpus(&SweepConfig::default_a800(), &[32, 128, 512]);
        assert!(points[1].row.moc_async.fb_sec > points[0].row.moc_async.fb_sec);
        assert!(points[2].row.moc_async.fb_sec > points[1].row.moc_async.fb_sec);
    }

    #[test]
    fn base_async_cannot_hide_snapshot_at_small_scale() {
        // Fig. 13(a): below 1024 GPUs the full snapshot exceeds F&B.
        let p = scaling_point(&SweepConfig::default_a800(), 64);
        assert!(p.row.base_async.snapshot_sec > p.row.base_async.fb_sec);
        // MoC's reduced snapshot hides (or nearly hides) in the window.
        assert!(p.row.moc_async.o_save_sec < 0.2 * p.row.base_async.o_save_sec);
    }

    #[test]
    fn moc_async_wins_everywhere() {
        for gpus in [32, 64, 256] {
            let p = scaling_point(&SweepConfig::default_a800(), gpus);
            assert!(
                p.row.moc_async.iteration_sec < p.row.base_async.iteration_sec + 1e-9,
                "{gpus} gpus: moc {} vs base-async {}",
                p.row.moc_async.iteration_sec,
                p.row.base_async.iteration_sec
            );
            assert!(p.row.moc_async.iteration_sec < p.row.baseline.iteration_sec);
        }
    }

    #[test]
    fn persist_size_grows_with_cluster_and_moc_shrinks_it() {
        // Fig. 13(f).
        let points = sweep_gpus(&SweepConfig::default_a800(), &[32, 128, 512]);
        for w in points.windows(2) {
            assert!(w[1].persist_bytes_base > w[0].persist_bytes_base);
        }
        for p in &points {
            assert!(
                (p.persist_bytes_moc as f64) < 0.6 * p.persist_bytes_base as f64,
                "moc persist {} vs base {}",
                p.persist_bytes_moc,
                p.persist_bytes_base
            );
        }
    }

    #[test]
    fn h100_shrinks_fb_more_than_snapshot() {
        // Fig. 13(c): compute advances faster than PCIe, so H100 makes
        // overlap harder for Base-Async.
        let a = scaling_point(&SweepConfig::default_a800(), 128);
        let h = scaling_point(&SweepConfig::default_h100(), 128);
        let fb_ratio = h.row.base_async.fb_sec / a.row.base_async.fb_sec;
        let snap_ratio = h.row.base_async.snapshot_sec / a.row.base_async.snapshot_sec;
        assert!(
            fb_ratio < snap_ratio,
            "fb ratio {fb_ratio} should shrink below snapshot ratio {snap_ratio}"
        );
    }

    #[test]
    fn seq_len_changes_fb_not_snapshot() {
        // Fig. 13(d): checkpoint volume is parameters, not activations.
        let points = sweep_seq_len(&SweepConfig::default_a800(), 64, &[512, 2048, 4096]);
        assert!(points[2].row.moc_async.fb_sec > points[0].row.moc_async.fb_sec);
        let s0 = points[0].row.moc_async.snapshot_sec;
        let s2 = points[2].row.moc_async.snapshot_sec;
        assert!(
            (s0 - s2).abs() < 1e-9,
            "snapshot must not depend on seq len"
        );
    }

    #[test]
    fn larger_models_widen_mocs_advantage() {
        // Fig. 13(e): snapshot grows faster than F&B with model size.
        let points = sweep_model_size(&SweepConfig::default_a800(), 256);
        let gain =
            |p: &ScalingPoint| p.row.base_async.iteration_sec - p.row.moc_async.iteration_sec;
        assert!(gain(&points[2]) > gain(&points[0]));
    }

    #[test]
    fn tp_variant_produces_valid_points() {
        let cfg = SweepConfig {
            parallelism: Parallelism::DpEpTp4,
            ..SweepConfig::default_a800()
        };
        let p = scaling_point(&cfg, 64);
        assert_eq!(p.gpus, 64);
        assert!(p.row.moc_async.iteration_sec > 0.0);
    }
}
