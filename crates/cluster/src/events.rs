//! Discrete-event simulation of multi-iteration training with
//! asynchronous, triple-buffered checkpointing — the timeline of Fig. 9.
//!
//! Where [`crate::timeline`] computes single-iteration analytics, this
//! module replays many iterations against the actual [`TripleBuffer`]
//! state machine, modelling snapshot and persist as timed occupations of
//! the PCIe and storage channels. It surfaces emergent effects the
//! closed forms approximate: checkpoint stalls when buffers run dry, and
//! the effective checkpoint cadence when persists are slower than the
//! requested interval.

use moc_core::twolevel::{BufferId, SnapshotOutcome, TripleBuffer};
use serde::{Deserialize, Serialize};

/// Inputs of the event simulation (all seconds / iterations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventSimConfig {
    /// F&B window per iteration.
    pub fb_sec: f64,
    /// Weight-update time per iteration.
    pub update_sec: f64,
    /// Snapshot duration per checkpoint (bottleneck rank).
    pub snapshot_sec: f64,
    /// Persist duration per checkpoint (bottleneck rank).
    pub persist_sec: f64,
    /// Request a checkpoint every `i_ckpt` iterations.
    pub i_ckpt: u64,
    /// Iterations to simulate.
    pub iterations: u64,
}

/// Output of the event simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSimReport {
    /// Total simulated wall-clock seconds.
    pub total_sec: f64,
    /// Seconds lost to checkpoint stalls (buffer exhaustion or snapshot
    /// overrunning the update fence).
    pub stall_sec: f64,
    /// Checkpoints whose persist completed.
    pub persisted_checkpoints: u64,
    /// Checkpoints requested.
    pub requested_checkpoints: u64,
    /// Mean interval in seconds between persisted checkpoints (the
    /// effective `I_ckpt` the storage tier sustains).
    pub effective_interval_sec: f64,
}

/// Predicted cumulative stall of a sustained straggler profile: a rank
/// whose steps take `factor ×` their normal duration for `duration`
/// consecutive iterations delays every one of those lock-step
/// iterations by `(factor − 1) · fb_sec`, because the synchronous
/// gradient exchange cannot complete before the slowest rank reports —
/// the stall amplification the runtime measures as its
/// `StragglerStall` phase. `fb_sec` is the F&B window of an unslowed
/// iteration (use the measured `Compute` phase mean when validating a
/// live run).
pub fn straggler_stall_prediction(factor: f64, duration: u64, fb_sec: f64) -> f64 {
    assert!(factor >= 1.0, "a factor below 1 would be a speed-up");
    (factor - 1.0) * duration as f64 * fb_sec
}

/// Runs the simulation.
///
/// Model: iteration `i` runs F&B then update. A checkpoint requested at
/// the end of iteration `i` claims a buffer (stalling the next update
/// until one frees), then occupies the PCIe channel for `snapshot_sec` —
/// overlapping the next iteration's F&B, but the *next* update cannot
/// start until the snapshot completes (the Fig. 3 constraint). Persists
/// drain one at a time through the storage channel.
pub fn simulate(config: &EventSimConfig) -> EventSimReport {
    assert!(config.i_ckpt >= 1, "checkpoint interval must be positive");
    let mut buffers = TripleBuffer::new();
    let mut now = 0.0f64;
    let mut stall = 0.0f64;
    // (buffer, time at which its snapshot completes)
    let mut active_snapshot: Option<(BufferId, f64)> = None;
    // (buffer, time at which its persist completes)
    let mut active_persist: Option<(BufferId, f64)> = None;
    let mut queued_ready: Vec<(BufferId, f64)> = Vec::new();
    let mut persist_times: Vec<f64> = Vec::new();
    let mut requested = 0u64;

    for it in 1..=config.iterations {
        // F&B of this iteration (snapshot from the previous checkpoint
        // overlaps it).
        now += config.fb_sec;

        // The update fence: an in-flight snapshot must finish first.
        if let Some((id, done)) = active_snapshot.take() {
            if done > now {
                stall += done - now;
                now = done;
            }
            match buffers.finish_snapshot(id).expect("valid transition") {
                SnapshotOutcome::StartPersist(p) => {
                    // Storage channel: serialise behind any active persist.
                    let free_at = active_persist.map(|(_, t)| t).unwrap_or(now).max(now);
                    active_persist = Some((p, free_at + config.persist_sec));
                }
                SnapshotOutcome::Queued(q) => queued_ready.push((q, now)),
            }
        }

        // Drain persist completions up to `now`.
        while let Some((id, done)) = active_persist {
            if done > now {
                break;
            }
            persist_times.push(done);
            let next = buffers.finish_persist(id).expect("valid transition");
            active_persist = next.map(|n| {
                queued_ready.retain(|(q, _)| *q != n);
                (n, done + config.persist_sec)
            });
        }

        now += config.update_sec;

        // Request a checkpoint?
        if it % config.i_ckpt == 0 {
            requested += 1;
            if !buffers.can_begin_snapshot() {
                // Stall until the storage tier frees a buffer.
                if let Some((id, done)) = active_persist {
                    stall += (done - now).max(0.0);
                    now = now.max(done);
                    persist_times.push(done);
                    let next = buffers.finish_persist(id).expect("valid");
                    active_persist = next.map(|n| {
                        queued_ready.retain(|(q, _)| *q != n);
                        (n, done + config.persist_sec)
                    });
                }
            }
            let id = buffers.begin_snapshot(it).expect("buffer freed");
            active_snapshot = Some((id, now + config.snapshot_sec));
        }
    }

    // Drain the tail: let outstanding work finish.
    if let Some((id, done)) = active_snapshot.take() {
        now = now.max(done);
        if let SnapshotOutcome::StartPersist(p) =
            buffers.finish_snapshot(id).expect("valid transition")
        {
            let free_at = active_persist.map(|(_, t)| t).unwrap_or(now).max(now);
            active_persist = Some((p, free_at + config.persist_sec));
        }
    }
    while let Some((id, done)) = active_persist {
        persist_times.push(done);
        now = now.max(done);
        let next = buffers.finish_persist(id).expect("valid transition");
        active_persist = next.map(|n| (n, done + config.persist_sec));
    }

    let effective_interval_sec = if persist_times.len() >= 2 {
        let span = persist_times.last().unwrap() - persist_times.first().unwrap();
        span / (persist_times.len() - 1) as f64
    } else {
        f64::INFINITY
    };
    EventSimReport {
        total_sec: now,
        stall_sec: stall,
        persisted_checkpoints: persist_times.len() as u64,
        requested_checkpoints: requested,
        effective_interval_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EventSimConfig {
        EventSimConfig {
            fb_sec: 1.0,
            update_sec: 0.1,
            snapshot_sec: 0.5,
            persist_sec: 2.0,
            i_ckpt: 4,
            iterations: 64,
        }
    }

    #[test]
    fn hidden_snapshot_causes_no_stall() {
        // snapshot (0.5) < fb (1.0): fully overlapped.
        let report = simulate(&base());
        assert_eq!(report.stall_sec, 0.0);
        assert_eq!(report.requested_checkpoints, 16);
        assert_eq!(report.persisted_checkpoints, 16);
    }

    #[test]
    fn oversized_snapshot_stalls_each_checkpoint() {
        let cfg = EventSimConfig {
            snapshot_sec: 1.8,
            ..base()
        };
        let report = simulate(&cfg);
        // Each checkpoint overruns the next F&B by 0.8s — except the
        // last one, whose snapshot drains in the tail with no update
        // left to stall.
        let expected = 0.8 * (report.requested_checkpoints - 1) as f64;
        assert!(
            (report.stall_sec - expected).abs() < 1e-6,
            "stall {} vs expected {expected}",
            report.stall_sec
        );
    }

    #[test]
    fn slow_persist_bounds_effective_interval() {
        // Requested every 4 iterations (4.4s of training) but persists
        // take 6s: the effective cadence degrades toward the persist time.
        let cfg = EventSimConfig {
            persist_sec: 6.0,
            ..base()
        };
        let report = simulate(&cfg);
        assert!(report.persisted_checkpoints >= 14);
        assert!(
            report.effective_interval_sec >= 5.9,
            "interval {}",
            report.effective_interval_sec
        );
    }

    #[test]
    fn total_time_is_at_least_pure_training() {
        let report = simulate(&base());
        let training = 64.0 * 1.1;
        assert!(report.total_sec >= training);
    }

    #[test]
    fn faster_persist_gives_smaller_interval() {
        let slow = simulate(&EventSimConfig {
            persist_sec: 6.0,
            ..base()
        });
        let fast = simulate(&EventSimConfig {
            persist_sec: 1.0,
            ..base()
        });
        assert!(fast.effective_interval_sec < slow.effective_interval_sec);
    }

    #[test]
    fn straggler_prediction_scales_linearly() {
        let one = straggler_stall_prediction(2.0, 1, 0.5);
        assert!((one - 0.5).abs() < 1e-12);
        let sustained = straggler_stall_prediction(2.0, 4, 0.5);
        assert!((sustained - 4.0 * one).abs() < 1e-12);
        assert_eq!(straggler_stall_prediction(1.0, 10, 3.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "speed-up")]
    fn straggler_prediction_rejects_speedup() {
        straggler_stall_prediction(0.5, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "checkpoint interval must be positive")]
    fn zero_interval_rejected() {
        simulate(&EventSimConfig {
            i_ckpt: 0,
            ..base()
        });
    }
}
