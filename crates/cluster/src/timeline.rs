//! Iteration timelines with checkpointing — Figs. 11 and 12.
//!
//! A [`TimelineModel`] combines the compute model (F&B window), the
//! sharding planner (per-rank/per-node checkpoint volumes) and the storage
//! bandwidths into the per-phase durations of one training iteration that
//! takes a checkpoint, for each of the paper's three methods:
//!
//! * **Baseline** — blocking save with Megatron-DeepSpeed sharding;
//! * **Base-Async** — asynchronous two-phase checkpointing, still full
//!   states and baseline sharding;
//! * **MoC-Async** — PEC + fully sharded + asynchronous two-level
//!   management.

use crate::compute::{ComputeModel, IterationWorkload};
use crate::hardware::ClusterSpec;
use moc_core::selection::PecConfig;
use moc_core::sharding::{CheckpointWorkload, ShardingPlanner, ShardingStrategy};
use moc_core::topology::ParallelTopology;
use moc_moe::MoeModelConfig;
use serde::{Deserialize, Serialize};

/// Fixed software overhead of triggering an asynchronous checkpoint
/// (thread handoff, bookkeeping) that cannot be overlapped.
pub const ASYNC_SYNC_OVERHEAD_SEC: f64 = 0.06;

/// One of the paper's checkpointing methods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodSpec {
    /// Display label.
    pub label: &'static str,
    /// Whether saving blocks training (vs asynchronous overlap).
    pub blocking: bool,
    /// Parameter-sharding strategy.
    pub strategy: ShardingStrategy,
    /// `K_snapshot` (`None` = save all experts).
    pub k_snapshot: Option<usize>,
    /// `K_persist` (`None` = persist all snapshotted experts).
    pub k_persist: Option<usize>,
}

impl MethodSpec {
    /// The Megatron-DeepSpeed blocking baseline.
    pub fn baseline() -> Self {
        Self {
            label: "Baseline",
            blocking: true,
            strategy: ShardingStrategy::Baseline,
            k_snapshot: None,
            k_persist: None,
        }
    }

    /// Asynchronous checkpointing without PEC or full sharding.
    pub fn base_async() -> Self {
        Self {
            label: "Base-Async",
            blocking: false,
            strategy: ShardingStrategy::Baseline,
            k_snapshot: None,
            k_persist: None,
        }
    }

    /// The fully optimised MoC-System configuration.
    pub fn moc_async(k_snapshot: usize, k_persist: usize) -> Self {
        Self {
            label: "MoC-Async",
            blocking: false,
            strategy: ShardingStrategy::FullyShardedAdaptive,
            k_snapshot: Some(k_snapshot),
            k_persist: Some(k_persist),
        }
    }

    /// Fully sharded synchronous-phase variant used in Fig. 11 (both
    /// levels at the same `K`).
    pub fn fully_sharded_k(k: usize) -> Self {
        Self {
            label: "FullySharded",
            blocking: false,
            strategy: ShardingStrategy::FullyShardedAdaptive,
            k_snapshot: Some(k),
            k_persist: Some(k),
        }
    }
}

/// Per-phase durations of a training iteration that checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationTimeline {
    /// Forward + backward window (`T_F&B`).
    pub fb_sec: f64,
    /// Weight update.
    pub update_sec: f64,
    /// GPU→CPU snapshot duration (bottleneck rank).
    pub snapshot_sec: f64,
    /// CPU→storage persist duration (bottleneck rank).
    pub persist_sec: f64,
    /// Training time lost to this checkpoint (`O_save`, Eq. 10).
    pub o_save_sec: f64,
    /// Wall-clock of the iteration including checkpoint effects.
    pub iteration_sec: f64,
    /// Fraction of (snapshot + persist) hidden behind training.
    pub overlap_fraction: f64,
    /// Lower bound on the checkpoint interval in seconds (persist must
    /// drain before the next checkpoint's persist can start).
    pub min_interval_sec: f64,
}

/// Builds iteration timelines for a model/topology/cluster combination.
#[derive(Debug, Clone)]
pub struct TimelineModel {
    compute: ComputeModel,
    planner: ShardingPlanner,
    work: IterationWorkload,
}

impl TimelineModel {
    /// Creates a timeline model.
    ///
    /// # Panics
    ///
    /// Panics if the model cannot be placed on the topology.
    pub fn new(
        model: MoeModelConfig,
        topo: ParallelTopology,
        cluster: ClusterSpec,
        work: IterationWorkload,
    ) -> Self {
        let planner = ShardingPlanner::new(model, topo).expect("placeable model");
        Self {
            compute: ComputeModel::new(cluster),
            planner,
            work,
        }
    }

    /// The underlying planner.
    pub fn planner(&self) -> &ShardingPlanner {
        &self.planner
    }

    /// F&B window in seconds.
    pub fn fb_secs(&self) -> f64 {
        self.compute
            .fb_breakdown(self.planner.model(), self.planner.topology(), &self.work)
            .total()
    }

    fn workload_for(&self, strategy: ShardingStrategy, k: Option<usize>) -> CheckpointWorkload {
        match k {
            None => self.planner.plan_full(strategy),
            Some(k) => {
                let model = self.planner.model();
                let pec = PecConfig::sequential(k, model.num_experts(), model.num_moe_layers());
                // Checkpoint index 0 is representative; sequential selection
                // keeps per-rank counts within ±1 across the rotation.
                self.planner.plan_pec(strategy, &pec, 0)
            }
        }
    }

    /// Bottleneck-rank snapshot seconds for a method.
    pub fn snapshot_secs(&self, method: &MethodSpec) -> f64 {
        let w = self.workload_for(method.strategy, method.k_snapshot);
        self.compute.cluster().snapshot_secs(w.bottleneck().1)
    }

    /// Bottleneck-rank persist seconds for a method (ranks write their
    /// shards to the distributed filesystem in parallel).
    pub fn persist_secs(&self, method: &MethodSpec) -> f64 {
        let w = self.workload_for(method.strategy, method.k_persist);
        self.compute.cluster().persist_secs(w.bottleneck().1)
    }

    /// The full iteration timeline under `method`.
    pub fn timeline(&self, method: &MethodSpec) -> IterationTimeline {
        let fb_sec = self.fb_secs();
        let update_sec = self
            .compute
            .update_secs(self.planner.model(), self.planner.topology());
        let snapshot_sec = self.snapshot_secs(method);
        let persist_sec = self.persist_secs(method);

        let (o_save_sec, min_interval_sec) = if method.blocking {
            (snapshot_sec + persist_sec, snapshot_sec + persist_sec)
        } else {
            let stall = (snapshot_sec - fb_sec).max(0.0);
            (stall + ASYNC_SYNC_OVERHEAD_SEC, persist_sec)
        };
        let iteration_sec = fb_sec + update_sec + o_save_sec;
        let save_total = snapshot_sec + persist_sec;
        let overlap_fraction = if save_total > 0.0 {
            (1.0 - o_save_sec / save_total).max(0.0)
        } else {
            1.0
        };
        IterationTimeline {
            fb_sec,
            update_sec,
            snapshot_sec,
            persist_sec,
            o_save_sec,
            iteration_sec,
            overlap_fraction,
            min_interval_sec,
        }
    }
}

/// The headline Fig. 12 comparison for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Configuration label (e.g. "Case1").
    pub case: String,
    /// Baseline timeline.
    pub baseline: IterationTimeline,
    /// Base-Async timeline.
    pub base_async: IterationTimeline,
    /// MoC-Async timeline.
    pub moc_async: IterationTimeline,
}

impl Fig12Row {
    /// Iteration speedup of MoC-Async over the blocking baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline.iteration_sec / self.moc_async.iteration_sec
    }

    /// Relative `O_save` reduction of MoC-Async vs the baseline.
    pub fn o_save_reduction(&self) -> f64 {
        1.0 - self.moc_async.o_save_sec / self.baseline.o_save_sec
    }
}

/// Builds the Fig. 12 row for one Table-2 case.
pub fn fig12_row(
    case: &str,
    model: MoeModelConfig,
    topo: ParallelTopology,
    cluster: ClusterSpec,
    moc_k_snapshot: usize,
    moc_k_persist: usize,
) -> Fig12Row {
    let tm = TimelineModel::new(model, topo, cluster, IterationWorkload::default_case());
    Fig12Row {
        case: case.to_string(),
        baseline: tm.timeline(&MethodSpec::baseline()),
        base_async: tm.timeline(&MethodSpec::base_async()),
        moc_async: tm.timeline(&MethodSpec::moc_async(moc_k_snapshot, moc_k_persist)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_moe::presets;

    fn tm(topo: ParallelTopology) -> TimelineModel {
        TimelineModel::new(
            presets::gpt_350m_16e(),
            topo,
            ClusterSpec::a800(),
            IterationWorkload::default_case(),
        )
    }

    #[test]
    fn blocking_baseline_pays_full_save() {
        let t = tm(ParallelTopology::case1()).timeline(&MethodSpec::baseline());
        assert!(t.o_save_sec > 2.0, "blocking save {t:?}");
        assert!((t.o_save_sec - (t.snapshot_sec + t.persist_sec)).abs() < 1e-9);
        assert!(t.iteration_sec > t.fb_sec + t.update_sec + 2.0);
    }

    #[test]
    fn fig12_speedup_and_reduction_bands() {
        // Paper: 3.25–5.12× iteration speedup, ≥98% O_save reduction.
        for (case, topo) in [
            ("Case1", ParallelTopology::case1()),
            ("Case2", ParallelTopology::case2()),
            ("Case3", ParallelTopology::case3()),
        ] {
            let row = fig12_row(
                case,
                presets::gpt_350m_16e(),
                topo,
                ClusterSpec::a800(),
                4,
                1,
            );
            assert!(
                (2.0..8.0).contains(&row.speedup()),
                "{case}: speedup {}",
                row.speedup()
            );
            assert!(
                row.o_save_reduction() > 0.95,
                "{case}: reduction {}",
                row.o_save_reduction()
            );
        }
    }

    #[test]
    fn moc_async_halves_min_interval() {
        // Fig. 12 discussion: MoC-Async persists less, so the checkpoint
        // interval lower bound shrinks substantially.
        let tm = tm(ParallelTopology::case2());
        let base = tm.timeline(&MethodSpec::base_async());
        let moc = tm.timeline(&MethodSpec::moc_async(4, 1));
        assert!(
            moc.min_interval_sec < 0.6 * base.min_interval_sec,
            "moc {} vs base {}",
            moc.min_interval_sec,
            base.min_interval_sec
        );
    }

    #[test]
    fn smaller_k_shrinks_snapshot_monotonically() {
        let tm = tm(ParallelTopology::case3());
        let mut prev = f64::INFINITY;
        for k in [16, 8, 4, 2, 1] {
            let t = tm.timeline(&MethodSpec::fully_sharded_k(k));
            assert!(
                t.snapshot_sec <= prev + 1e-9,
                "k={k}: snapshot {} grew past {}",
                t.snapshot_sec,
                prev
            );
            prev = t.snapshot_sec;
        }
    }

    #[test]
    fn fully_sharded_full_beats_baseline_snapshot() {
        // Fig. 11: "even the full savings (K=16) outperform the baseline"
        // thanks to fully sharded checkpointing.
        let tm = tm(ParallelTopology::case1());
        let base = tm.snapshot_secs(&MethodSpec::baseline());
        let fs16 = tm.snapshot_secs(&MethodSpec::fully_sharded_k(16));
        assert!(fs16 < base, "fs {fs16} vs baseline {base}");
    }

    #[test]
    fn async_overlap_fraction_high() {
        let tm = tm(ParallelTopology::case2());
        let t = tm.timeline(&MethodSpec::base_async());
        assert!(
            t.overlap_fraction > 0.8,
            "base-async overlap {}",
            t.overlap_fraction
        );
        let moc = tm.timeline(&MethodSpec::moc_async(4, 1));
        assert!(moc.overlap_fraction > t.overlap_fraction);
    }

    #[test]
    fn case1_snapshot_exceeds_fb_for_baseline_async() {
        // Paper: baseline snapshot duration exceeds F&B in Case 1 — the
        // motivation for fully sharded checkpointing there.
        let tm = tm(ParallelTopology::case1());
        let t = tm.timeline(&MethodSpec::base_async());
        assert!(
            t.snapshot_sec > t.fb_sec,
            "snapshot {} should exceed fb {}",
            t.snapshot_sec,
            t.fb_sec
        );
        assert!(t.o_save_sec > ASYNC_SYNC_OVERHEAD_SEC);
    }
}
