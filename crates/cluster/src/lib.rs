//! # moc-cluster — distributed-training performance simulator
//!
//! The ASTRA-sim substitute of the MoC-System reproduction: deterministic
//! analytic + event models of MoE training iterations with checkpointing.
//!
//! * [`hardware`] — GPU/cluster presets with the paper's constants
//!   (A800 312 TFLOPS @ 20%, 1 GB/s snapshot; H100 989 TFLOPS @ 20%,
//!   2 GB/s);
//! * [`comm`] — α–β collective cost models (All-to-All, all-reduce,
//!   reduce-scatter) aware of intra- vs inter-node bandwidth;
//! * [`compute`] — F&B and update durations from FLOP accounting;
//! * [`timeline`] — per-phase iteration timelines for Baseline /
//!   Base-Async / MoC-Async (Figs. 11–12);
//! * [`scaling`] — the Fig. 13 sweeps over GPUs, parallelism, hardware,
//!   sequence length, model size and persist volume.
//!
//! # Examples
//!
//! ```
//! use moc_cluster::hardware::ClusterSpec;
//! use moc_cluster::timeline::fig12_row;
//! use moc_core::ParallelTopology;
//! use moc_moe::presets;
//!
//! let row = fig12_row(
//!     "Case1",
//!     presets::gpt_350m_16e(),
//!     ParallelTopology::case1(),
//!     ClusterSpec::a800(),
//!     4,
//!     1,
//! );
//! assert!(row.speedup() > 2.0);
//! assert!(row.o_save_reduction() > 0.95);
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod compute;
pub mod events;
pub mod hardware;
pub mod scaling;
pub mod timeline;

pub use comm::{CommModel, GroupSpan};
pub use compute::{ComputeModel, FbBreakdown, IterationWorkload};
pub use events::{simulate, straggler_stall_prediction, EventSimConfig, EventSimReport};
pub use hardware::{ClusterSpec, GpuSpec};
pub use scaling::{
    scaling_point, sweep_gpus, sweep_model_size, sweep_seq_len, Parallelism, ScalingPoint,
    SweepConfig,
};
pub use timeline::{fig12_row, Fig12Row, IterationTimeline, MethodSpec, TimelineModel};
