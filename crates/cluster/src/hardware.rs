//! Hardware models of the simulated training clusters.
//!
//! The paper's simulations (Section 6.2.4) configure A800 GPUs at
//! 312 TFLOPS with 20% utilisation and 1 GB/s GPU→CPU snapshot bandwidth,
//! and H100 GPUs at 989 TFLOPS / 20% / 2 GB/s. Interconnect constants are
//! chosen to reproduce the paper's qualitative observations (e.g. Case 3's
//! intra-node All-to-All beating Case 2's inter-node one).

use moc_store::{StorageHierarchy, TierLink};
use serde::{Deserialize, Serialize};

/// One GPU class plus its node-level interconnects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Peak dense throughput in TFLOPS.
    pub peak_tflops: f64,
    /// Sustained fraction of peak achieved by training kernels.
    pub utilization: f64,
    /// Intra-node GPU-to-GPU bandwidth (NVLink), bytes/s.
    pub nvlink_bytes_per_sec: f64,
    /// Inter-node network bandwidth per GPU (InfiniBand share), bytes/s.
    pub network_bytes_per_sec: f64,
    /// Collective startup latency per hop, seconds.
    pub comm_latency_sec: f64,
    /// Storage hierarchy (PCIe snapshot path, persist path).
    pub storage: StorageHierarchy,
}

impl GpuSpec {
    /// The paper's A800 configuration.
    pub fn a800() -> Self {
        Self {
            peak_tflops: 312.0,
            utilization: 0.20,
            nvlink_bytes_per_sec: 200e9,
            network_bytes_per_sec: 12.5e9, // 100 Gb/s HDR share
            comm_latency_sec: 15e-6,
            storage: StorageHierarchy::a800(),
        }
    }

    /// The paper's H100 configuration.
    pub fn h100() -> Self {
        Self {
            peak_tflops: 989.0,
            utilization: 0.20,
            nvlink_bytes_per_sec: 450e9,
            network_bytes_per_sec: 50e9, // 400 Gb/s NDR share
            comm_latency_sec: 10e-6,
            storage: StorageHierarchy::h100(),
        }
    }

    /// Effective sustained FLOPS of one GPU.
    pub fn effective_flops(&self) -> f64 {
        self.peak_tflops * 1e12 * self.utilization
    }
}

/// A homogeneous cluster of GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// GPU class.
    pub gpu: GpuSpec,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Per-rank write bandwidth into the distributed filesystem, bytes/s.
    /// Ranks persist their shards in parallel (Megatron-DeepSpeed writes
    /// one file per rank), and cluster filesystems scale with writers, so
    /// the bottleneck is the slowest single rank, not a node aggregate.
    pub persist_bytes_per_sec: f64,
}

impl ClusterSpec {
    /// An A800 cluster with 8 GPUs per node (the paper's testbed).
    pub fn a800() -> Self {
        Self {
            gpu: GpuSpec::a800(),
            gpus_per_node: 8,
            persist_bytes_per_sec: 1.5e9,
        }
    }

    /// An H100 cluster with 8 GPUs per node.
    pub fn h100() -> Self {
        Self {
            gpu: GpuSpec::h100(),
            gpus_per_node: 8,
            persist_bytes_per_sec: 3.0e9,
        }
    }

    /// GPU→CPU snapshot time for `bytes` on one rank.
    pub fn snapshot_secs(&self, bytes: u64) -> f64 {
        self.gpu.storage.snapshot.transfer_secs(bytes)
    }

    /// CPU→storage persist time for `bytes` written by one rank.
    pub fn persist_secs(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.gpu.storage.persist.latency_sec + bytes as f64 / self.persist_bytes_per_sec
    }

    /// Calibrates the spec against measured transfers: least-squares
    /// fits of the snapshot and persist [`TierLink`]s from live
    /// `(bytes, seconds)` samples ([`TierLink::fit`]). A tier whose
    /// samples cannot be fitted (too few distinct sizes, degenerate
    /// slope) keeps its configured constants, so calibration is always
    /// safe to apply.
    pub fn calibrated(
        &self,
        snapshot_samples: &[(u64, f64)],
        persist_samples: &[(u64, f64)],
    ) -> Self {
        let mut spec = *self;
        if let Some(link) = TierLink::fit(snapshot_samples) {
            spec.gpu.storage.snapshot = link;
        }
        if let Some(link) = TierLink::fit(persist_samples) {
            spec.gpu.storage.persist = link;
            spec.persist_bytes_per_sec = link.bandwidth_bytes_per_sec;
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let a = GpuSpec::a800();
        assert!((a.effective_flops() - 62.4e12).abs() < 1e9);
        let h = GpuSpec::h100();
        assert!((h.effective_flops() - 197.8e12).abs() < 1e9);
    }

    #[test]
    fn h100_snapshots_twice_as_fast() {
        let a = ClusterSpec::a800();
        let h = ClusterSpec::h100();
        let bytes = 4 << 30;
        assert!(h.snapshot_secs(bytes) < 0.6 * a.snapshot_secs(bytes));
    }

    #[test]
    fn snapshot_time_scales_with_bytes() {
        let c = ClusterSpec::a800();
        let t1 = c.snapshot_secs(1_000_000_000);
        assert!(
            (t1 - 1.005).abs() < 1e-6,
            "1 GB at 1 GB/s plus latency: {t1}"
        );
    }

    #[test]
    fn persist_zero_bytes_is_free() {
        assert_eq!(ClusterSpec::a800().persist_secs(0), 0.0);
    }

    #[test]
    fn calibration_replaces_fitted_tiers_only() {
        let base = ClusterSpec::a800();
        // Snapshot measured at 2 GB/s with 1 ms latency; persist samples
        // degenerate (one distinct size) and must keep the defaults.
        let snap: Vec<(u64, f64)> = [1u64 << 28, 1 << 29, 1 << 30]
            .iter()
            .map(|&b| (b, 0.001 + b as f64 / 2.0e9))
            .collect();
        let persist = vec![(1u64 << 30, 1.0), (1 << 30, 1.1)];
        let cal = base.calibrated(&snap, &persist);
        assert!(
            (cal.gpu.storage.snapshot.bandwidth_bytes_per_sec - 2.0e9).abs() / 2.0e9 < 1e-6,
            "snapshot bandwidth must follow the fit"
        );
        assert_eq!(cal.persist_bytes_per_sec, base.persist_bytes_per_sec);
        assert_eq!(cal.gpu.storage.persist, base.gpu.storage.persist);
        // Fitted snapshot time reproduces the measurements.
        assert!((cal.snapshot_secs(1 << 30) - snap[2].1).abs() < 1e-9);
    }
}
