//! Project checkpointing efficiency across cluster scales, the Fig. 13
//! style study: Baseline vs Base-Async vs MoC-Async from 32 to 512 GPUs.
//!
//! Run with `cargo run --example cluster_sweep`.

use moc_system::cluster::scaling::{sweep_gpus, SweepConfig};

fn main() {
    let config = SweepConfig::default_a800();
    println!("LLaMA-MoE (hidden 2048), DP+EP on A800, one expert/GPU/layer");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10}",
        "gpus", "baseline", "base-async", "moc-async", "speedup"
    );
    for point in sweep_gpus(&config, &[32, 64, 128, 256, 512]) {
        println!(
            "{:<8} {:>11.2}s {:>11.2}s {:>11.2}s {:>9.2}x",
            point.gpus,
            point.row.baseline.iteration_sec,
            point.row.base_async.iteration_sec,
            point.row.moc_async.iteration_sec,
            point.row.speedup()
        );
    }
}
