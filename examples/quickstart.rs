//! Quickstart: size a PEC checkpoint, plan fully sharded saving, and take
//! an asynchronous two-level checkpoint of a (synthetic) model.
//!
//! Run with `cargo run --example quickstart`.

use moc_system::core::selection::PecConfig;
use moc_system::core::sharding::{ShardingPlanner, ShardingStrategy};
use moc_system::core::twolevel::{CheckpointEngine, EngineConfig, SyntheticState};
use moc_system::core::ParallelTopology;
use moc_system::moe::presets;
use moc_system::store::MemoryObjectStore;
use std::sync::Arc;

fn main() {
    // 1. How much does PEC shrink a GPT-350M-16E checkpoint?
    let model = presets::gpt_350m_16e();
    let full = model.full_checkpoint_bytes();
    println!(
        "model {} — full checkpoint {:.2} GiB",
        model.name(),
        gib(full)
    );
    for k in [16, 8, 4, 2, 1] {
        println!(
            "  K_pec = {k:>2}: {:>6.2} GiB ({:.1}% of full)",
            gib(model.pec_checkpoint_bytes(k)),
            100.0 * model.pec_size_ratio(k)
        );
    }

    // 2. Who writes what under fully sharded checkpointing?
    let topo = ParallelTopology::case3();
    let planner = ShardingPlanner::new(model.clone(), topo).expect("model fits topology");
    let baseline = planner.plan_full(ShardingStrategy::Baseline);
    let sharded = planner.plan_full(ShardingStrategy::FullySharded);
    println!(
        "bottleneck rank: baseline {:.2} GiB -> fully sharded {:.2} GiB",
        gib(baseline.bottleneck().1),
        gib(sharded.bottleneck().1)
    );

    // 3. Take asynchronous two-level PEC checkpoints of a tiny model and
    //    recover after a node fault.
    let tiny = presets::tiny_lm_16e();
    let pec = PecConfig::sequential(4, tiny.num_experts(), tiny.num_moe_layers());
    let mut engine = CheckpointEngine::new(
        tiny,
        ParallelTopology::case2(),
        Arc::new(MemoryObjectStore::new()),
        EngineConfig {
            strategy: ShardingStrategy::FullyShardedAdaptive,
            snapshot_pec: pec,
            k_persist: 1,
            two_level_recovery: true,
        },
    )
    .expect("engine");
    let state = SyntheticState::full();
    engine.bootstrap(0, &state);
    for iteration in [100, 200, 300] {
        engine.checkpoint(iteration, &state);
    }
    engine.wait_idle();
    engine.fault(0);
    let plan = engine.recover(350).expect("recoverable");
    println!(
        "after node-0 fault: resume at iteration {}, {} shards from memory, {} from storage",
        plan.resume_iteration,
        plan.memory_actions(),
        plan.storage_actions()
    );
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}
