//! Persist real framed checkpoint shards to the filesystem through the
//! asynchronous agents, kill a node, and recover from disk — demonstrating
//! the crash-safe persistence path.
//!
//! Run with `cargo run --example durable_checkpoints`.

use moc_system::core::selection::PecConfig;
use moc_system::core::sharding::ShardingStrategy;
use moc_system::core::twolevel::{CheckpointEngine, EngineConfig, SyntheticState};
use moc_system::core::ParallelTopology;
use moc_system::moe::presets;
use moc_system::store::{FileObjectStore, ObjectStore};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("moc-demo-{}", std::process::id()));
    let store = Arc::new(FileObjectStore::open(&root)?);
    println!("persisting shards under {}", root.display());

    let tiny = presets::tiny_lm_8e();
    let mut engine = CheckpointEngine::new(
        tiny.clone(),
        ParallelTopology::case1(),
        store.clone(),
        EngineConfig {
            strategy: ShardingStrategy::FullySharded,
            snapshot_pec: PecConfig::sequential(2, tiny.num_experts(), tiny.num_moe_layers()),
            k_persist: 1,
            two_level_recovery: true,
        },
    )?;
    let state = SyntheticState::full();
    engine.bootstrap(0, &state);
    for it in [50, 100, 150] {
        engine.checkpoint(it, &state);
    }
    engine.wait_idle();
    println!(
        "persisted {} shards, {:.1} MB on disk",
        store.keys()?.len(),
        store.total_bytes()? as f64 / 1e6
    );

    engine.fault(0);
    let plan = engine.recover(160)?;
    println!(
        "recovered: resume at iteration {}, staleness {} iteration-slots",
        plan.resume_iteration,
        plan.total_staleness()
    );
    std::fs::remove_dir_all(&root)?;
    Ok(())
}
