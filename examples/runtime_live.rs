//! Live multi-rank training with Poisson node kills and two-level
//! recovery, printing the per-iteration timeline, recovery events, and
//! the final measured PLT — plus a sync-vs-async checkpoint overhead
//! comparison and the analytic projection of the measured phase times.
//!
//! Run with `cargo run --release --example runtime_live`.

use moc_system::core::ParallelTopology;
use moc_system::runtime::{
    CheckpointMode, Coordinator, EventKind, Phase, RunSummary, RuntimeConfig,
};
use moc_system::store::{FaultPlan, FileObjectStore};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 nodes × 4 GPUs, DP = EP = 8: one expert of the tiny 8-expert LM
    // per rank, four rank threads per node.
    let topo = ParallelTopology::dp_ep(2, 4, 8, 8)?;
    let config = RuntimeConfig {
        total_iterations: 60,
        i_ckpt: 5,
        eval_every: 15,
        k_snapshot: 4,
        k_persist: 2,
        pec_mode: PecMode::WO,
        two_level: true,
        checkpoint_mode: CheckpointMode::Async,
        faults: FaultPlan::Poisson {
            rate: 0.03,
            num_nodes: 2,
            seed: 23,
        },
        dynamic_k_budget: Some(0.12),
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo)
    };

    let root = std::env::temp_dir().join(format!("moc-runtime-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    println!(
        "== live run: {} ranks on {} nodes, async two-level checkpointing ==",
        8, 2
    );
    let store = Arc::new(FileObjectStore::open(root.join("async"))?);
    let async_run = Coordinator::new(config.clone(), store)?.run()?;
    print_timeline(&async_run);
    print_summary("async two-level", &async_run);

    println!("\n== same run, synchronous checkpointing baseline ==");
    let sync_config = RuntimeConfig {
        checkpoint_mode: CheckpointMode::Sync,
        ..config
    };
    let store = Arc::new(FileObjectStore::open(root.join("sync"))?);
    let sync_run = Coordinator::new(sync_config, store)?.run()?;
    print_summary("sync baseline", &sync_run);

    println!(
        "\ncheckpoint overhead: async {:.2} ms vs sync {:.2} ms per checkpoint ({:.1}x)",
        1e3 * async_run.checkpoint_overhead_secs(),
        1e3 * sync_run.checkpoint_overhead_secs(),
        sync_run.checkpoint_overhead_secs() / async_run.checkpoint_overhead_secs().max(1e-9),
    );

    let projection = async_run.analytic_projection();
    println!(
        "analytic projection of measured phases: {:.2}s simulated vs {:.2}s live loop",
        projection.total_sec, async_run.loop_secs
    );

    std::fs::remove_dir_all(&root)?;
    Ok(())
}

fn print_timeline(summary: &RunSummary) {
    for event in &summary.timeline {
        match &event.kind {
            EventKind::Checkpoint {
                stalled_nodes,
                overhead_secs,
            } => {
                let stall = if stalled_nodes.is_empty() {
                    String::new()
                } else {
                    format!("  [stalled nodes {stalled_nodes:?}]")
                };
                println!(
                    "  iter {:>3}  checkpoint  {:>7.2} ms{stall}",
                    event.iteration,
                    1e3 * overhead_secs
                );
            }
            EventKind::FaultInjected { nodes } => {
                println!("  iter {:>3}  KILL        nodes {nodes:?}", event.iteration);
            }
            EventKind::FaultDetected { nodes, detect_secs } => {
                println!(
                    "  iter {:>3}  detected    nodes {nodes:?} dead after {:.0} ms",
                    event.iteration,
                    1e3 * detect_secs
                );
            }
            EventKind::Recovery {
                resume_iteration,
                memory_hits,
                storage_hits,
                total_secs,
                shard_groups,
                ..
            } => {
                println!(
                    "  iter {:>3}  RECOVERED   resume at {resume_iteration} ({memory_hits} shards from memory, {storage_hits} from storage, shard groups {shard_groups:?}, {:.0} ms)",
                    event.iteration,
                    1e3 * total_secs
                );
            }
            EventKind::Eval { loss } => {
                println!(
                    "  iter {:>3}  eval        val loss {loss:.4}",
                    event.iteration
                );
            }
            EventKind::CollectiveAbort {
                aborted_ranks,
                fallback_iterations,
            } => {
                println!(
                    "  iter {:>3}  RING ABORT  ranks {aborted_ranks:?} bailed; star fallback for {fallback_iterations} iteration(s)",
                    event.iteration
                );
            }
            EventKind::StragglerInjected { rank, factor } => {
                println!(
                    "  iter {:>3}  SLOW        rank {rank} stretched {factor}x",
                    event.iteration
                );
            }
            EventKind::ElasticShrink {
                dead_groups,
                adoptions,
                experts_migrated,
                shrink_secs,
            } => {
                println!(
                    "  iter {:>3}  SHRINK      groups {dead_groups:?} adopted as {adoptions:?}, {experts_migrated} experts migrated ({:.1} ms)",
                    event.iteration,
                    1e3 * shrink_secs
                );
            }
            EventKind::ElasticExpand {
                returning_groups,
                experts_returned,
                degraded_iterations,
                expand_secs,
            } => {
                println!(
                    "  iter {:>3}  EXPAND      groups {returning_groups:?} rejoined after {degraded_iterations} degraded iteration(s), {experts_returned} experts returned ({:.1} ms)",
                    event.iteration,
                    1e3 * expand_secs
                );
            }
        }
    }
}

fn print_summary(label: &str, summary: &RunSummary) {
    println!(
        "{label}: {} iterations executed ({} scheduled), {} checkpoints, {} faults, {} recoveries",
        summary.iterations_executed,
        60,
        summary.checkpoints_taken,
        summary.faults_injected,
        summary.recoveries,
    );
    println!(
        "  final val loss {:.4}  measured PLT {:.3}%  K trace {:?}",
        summary.final_val_loss,
        100.0 * summary.plt,
        summary.k_trace,
    );
    println!(
        "  recovered {:.1} KB ({} memory / {} storage shards), persisted {:.1} MB, {} stalls",
        summary.recovered_bytes as f64 / 1e3,
        summary.memory_hits,
        summary.storage_hits,
        summary.persisted_bytes as f64 / 1e6,
        summary.stall_count,
    );
    println!(
        "  replicas bitwise consistent: {}  mean iteration {:.2} ms  phases: compute {:.2} ms, ckpt-serialize {:.2} ms, ckpt-submit {:.2} ms, ckpt-write {:.2} ms",
        summary.replicas_consistent,
        1e3 * summary.mean_iteration_secs(),
        1e3 * summary.phase(Phase::Compute).mean_secs(),
        1e3 * summary.phase(Phase::CkptSerialize).mean_secs(),
        1e3 * summary.phase(Phase::CkptSubmit).mean_secs(),
        1e3 * summary.phase(Phase::CkptWrite).mean_secs(),
    );
    if summary.phase(Phase::ReduceScatter).count > 0 {
        println!(
            "  ring collective: reduce-scatter {:.2} ms, all-gather {:.2} ms, ring-wait {:.2} ms per iteration; {} aborts, {} chunk buffers preallocated (zero steady-state allocs)",
            1e3 * summary.phase(Phase::ReduceScatter).mean_secs(),
            1e3 * summary.phase(Phase::AllGather).mean_secs(),
            1e3 * summary.phase(Phase::RingWait).mean_secs(),
            summary.ring_aborts,
            summary.collective_allocs,
        );
    }
}
