//! Live multi-rank training with Poisson node kills and two-level
//! recovery, with the moc-obs tracing subsystem enabled: the run prints
//! the text report (timeline + per-phase latency table with p50/p99,
//! per-rank phase breakdown, and the critical-path blame table), writes
//! a Perfetto-loadable `trace.json` (open it at
//! <https://ui.perfetto.dev>) whose flow arrows link each injected fault
//! to its detection and recovery spans, streams live telemetry
//! (`telemetry.prom` Prometheus snapshot during the run,
//! `telemetry.json` series and `blame.json` at the end), audits the
//! trace's causal structure at finish (`audit.json` — CI replays the
//! same check offline with `moc-audit`), scores per-rank health online
//! (`health.json`), and dumps the flight recorder the moment a fault
//! is declared. A sync-checkpointing baseline runs with observability
//! disabled for the overhead comparison.
//!
//! The trace directory defaults to `target/obs/` and can be overridden
//! with the `MOC_TRACE_DIR` environment variable (CI uploads it as a
//! workflow artifact).
//!
//! Run with `cargo run --release --example runtime_live`.

use moc_system::core::ParallelTopology;
use moc_system::runtime::{CheckpointMode, Coordinator, ObsConfig, RuntimeConfig};
use moc_system::store::{FaultPlan, FileObjectStore};
use moc_system::train::PecMode;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_dir = std::env::var_os("MOC_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/obs"));

    // 2 nodes × 4 GPUs, DP = EP = 8: one expert of the tiny 8-expert LM
    // per rank, four rank threads per node.
    let topo = ParallelTopology::dp_ep(2, 4, 8, 8)?;
    let config = RuntimeConfig {
        total_iterations: 60,
        i_ckpt: 5,
        eval_every: 15,
        k_snapshot: 4,
        k_persist: 2,
        pec_mode: PecMode::WO,
        two_level: true,
        checkpoint_mode: CheckpointMode::Async,
        faults: FaultPlan::Poisson {
            rate: 0.03,
            num_nodes: 2,
            seed: 23,
        },
        dynamic_k_budget: Some(0.12),
        heartbeat_timeout: Duration::from_millis(800),
        obs: ObsConfig::with_trace(trace_dir.join("trace.json"))
            .with_telemetry(Duration::from_millis(50))
            .with_health(),
        ..RuntimeConfig::tiny(topo)
    };

    let root = std::env::temp_dir().join(format!("moc-runtime-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    println!("== live run: 8 ranks on 2 nodes, async two-level checkpointing, tracing on ==");
    let store = Arc::new(FileObjectStore::open(root.join("async"))?);
    let async_run = Coordinator::new(config.clone(), store)?.run()?;
    println!("{}", async_run.render_text());

    println!("\n== same run, synchronous checkpointing baseline (tracing off) ==");
    let sync_config = RuntimeConfig {
        checkpoint_mode: CheckpointMode::Sync,
        obs: ObsConfig::default(),
        ..config
    };
    let store = Arc::new(FileObjectStore::open(root.join("sync"))?);
    let sync_run = Coordinator::new(sync_config, store)?.run()?;
    println!("{}", sync_run.render_text());

    println!(
        "\ncheckpoint overhead: async {:.2} ms vs sync {:.2} ms per checkpoint ({:.1}x)",
        1e3 * async_run.checkpoint_overhead_secs(),
        1e3 * sync_run.checkpoint_overhead_secs(),
        sync_run.checkpoint_overhead_secs() / async_run.checkpoint_overhead_secs().max(1e-9),
    );

    let projection = async_run.analytic_projection();
    println!(
        "analytic projection of measured phases: {:.2}s simulated vs {:.2}s live loop",
        projection.total_sec, async_run.loop_secs
    );

    if let Some(path) = &async_run.obs.trace_path {
        println!(
            "\ntrace written to {} — load it at https://ui.perfetto.dev",
            path.display()
        );
    }
    for dump in &async_run.obs.flight_dumps {
        if let Some(path) = &dump.text_path {
            println!("flight recorder dump #{}: {}", dump.seq, path.display());
        }
    }
    if let Some(telemetry) = &async_run.obs.telemetry {
        if let Some(path) = &telemetry.json_path {
            println!("telemetry series: {}", path.display());
        }
        if let Some(path) = &telemetry.prom_path {
            println!("telemetry snapshot: {}", path.display());
        }
    }
    if let Some(path) = &async_run.obs.blame_path {
        println!("blame report: {}", path.display());
    }
    if let (Some(audit), Some(path)) = (&async_run.obs.audit, &async_run.obs.audit_path) {
        println!(
            "causal audit: {} invariant violations across {} events — {}",
            audit.violations.len(),
            audit.events_checked,
            path.display()
        );
    }
    if let Some(health) = &async_run.health {
        println!(
            "health plane: {} ranks scored, {} finished degraded — {}",
            health.rows.len(),
            health.degraded_ranks().len(),
            trace_dir.join("health.json").display()
        );
    }

    std::fs::remove_dir_all(&root)?;
    Ok(())
}
