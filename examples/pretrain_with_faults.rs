//! Pre-train a real tiny MoE language model with node faults, recovering
//! from PEC checkpoints, and report the loss curve and measured PLT.
//!
//! Run with `cargo run --release --example pretrain_with_faults`.

use moc_system::store::FaultEvent;
use moc_system::train::harness::{run_experiment, FaultToleranceConfig, TrainConfig};
use moc_system::train::PecMode;

fn main() {
    let train = TrainConfig {
        total_iterations: 200,
        eval_every: 40,
        ..TrainConfig::tiny_8e()
    };
    let faults = vec![
        FaultEvent {
            iteration: 70,
            node: 0,
        },
        FaultEvent {
            iteration: 150,
            node: 1,
        },
    ];

    println!("== full checkpointing (baseline) ==");
    let base = run_experiment(
        &train,
        &FaultToleranceConfig::baseline(&train.model, 10, faults.clone()),
    );
    print_report(&base);

    println!("\n== PEC K_snapshot=2, K_persist=1, two-level recovery ==");
    let moc = run_experiment(
        &train,
        &FaultToleranceConfig::pec(&train.model, 2, 1, PecMode::WO, true, 10, faults),
    );
    print_report(&moc);

    println!(
        "\ncheckpoint traffic: baseline {:.1} MB vs PEC {:.1} MB persisted",
        base.persisted_bytes as f64 / 1e6,
        moc.persisted_bytes as f64 / 1e6
    );
}

fn print_report(report: &moc_system::train::RunReport) {
    for (it, loss) in &report.val_curve {
        println!("  iter {it:>4}: val loss {loss:.4}");
    }
    println!(
        "  final loss {:.4}, measured PLT {:.3}%, iterations executed {}",
        report.final_val_loss,
        100.0 * report.plt,
        report.iterations_executed
    );
}
